// Pipeline correctness: directed tests for forwarding, hazards, dual issue,
// branches, memory ops, counters — plus a randomized differential sweep
// against the functional reference executor (the architectural oracle).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "isa/disasm.h"
#include "isa/refexec.h"
#include "testutil.h"

namespace detstl {
namespace {

using isa::Assembler;
using isa::Op;
using namespace isa;  // register names

// ----------------------------------------------------------------------------
// Directed tests
// ----------------------------------------------------------------------------

TEST(Pipeline, BasicAluAndHalt) {
  Assembler a(mem::kFlashBase);
  a.addi(R1, R0, 5);
  a.addi(R2, R0, 7);
  a.add(R3, R1, R2);
  a.halt();
  auto s = test::run_single_core(a.assemble());
  EXPECT_TRUE(s.core(0).halted());
  EXPECT_EQ(s.core(0).reg(3), 12u);
}

TEST(Pipeline, ForwardingChainEveryDistance) {
  // r1 -> r2 -> r3 -> r4, each depending on the previous result.
  Assembler a(mem::kFlashBase);
  a.addi(R1, R0, 1);
  a.addi(R2, R1, 1);
  a.addi(R3, R2, 1);
  a.addi(R4, R3, 1);
  a.addi(R5, R4, 1);
  a.addi(R6, R5, 1);
  a.halt();
  auto s = test::run_single_core(a.assemble());
  EXPECT_EQ(s.core(0).reg(6), 6u);
}

TEST(Pipeline, LoadUseStallProducesCorrectValue) {
  Assembler a(mem::kFlashBase);
  a.li(R10, mem::kDtcmBase);
  a.addi(R1, R0, 99);
  a.sw(R1, R10, 0);
  a.lw(R2, R10, 0);
  a.add(R3, R2, R2);  // load-use: needs the stall
  a.halt();
  auto s = test::run_single_core(a.assemble());
  EXPECT_EQ(s.core(0).reg(3), 198u);
  EXPECT_GE(s.core(0).perf().hdcu_stalls, 1u);
}

TEST(Pipeline, StoreDataForwarded) {
  Assembler a(mem::kFlashBase);
  a.li(R10, mem::kDtcmBase);
  a.addi(R1, R0, 42);
  a.sw(R1, R10, 4);  // r1 produced two instructions earlier
  a.lw(R2, R10, 4);
  a.halt();
  auto s = test::run_single_core(a.assemble());
  EXPECT_EQ(s.core(0).reg(2), 42u);
}

TEST(Pipeline, TakenAndNotTakenBranches) {
  Assembler a(mem::kFlashBase);
  a.addi(R1, R0, 3);
  a.addi(R2, R0, 0);
  a.label("loop");
  a.addi(R2, R2, 10);
  a.addi(R1, R1, -1);
  a.bne(R1, R0, "loop");
  a.addi(R3, R2, 1);
  a.halt();
  auto s = test::run_single_core(a.assemble());
  EXPECT_EQ(s.core(0).reg(2), 30u);
  EXPECT_EQ(s.core(0).reg(3), 31u);
}

TEST(Pipeline, JalAndJalr) {
  Assembler a(mem::kFlashBase);
  a.jal("func");
  a.addi(R5, R5, 100);  // return point
  a.halt();
  a.label("func");
  a.addi(R5, R0, 1);
  a.ret();
  auto s = test::run_single_core(a.assemble());
  EXPECT_EQ(s.core(0).reg(5), 101u);
}

TEST(Pipeline, DualIssueThroughput) {
  // Independent ALU ops from ITCM-like conditions (cached) should sustain
  // close to 2 instructions per cycle.
  Assembler a(mem::kFlashBase);
  a.csrw(Csr::kCacheCfg, R0);  // ensure known state
  for (int i = 0; i < 100; ++i) {
    a.addi(R1, R1, 1);
    a.addi(R2, R2, 1);
  }
  a.halt();
  auto s = test::run_single_core(a.assemble());
  EXPECT_EQ(s.core(0).reg(1), 100u);
  EXPECT_EQ(s.core(0).reg(2), 100u);
}

TEST(Pipeline, SamePacketRawSplits) {
  Assembler a(mem::kFlashBase);
  a.align(8);
  a.addi(R1, R0, 5);
  a.addi(R2, R1, 1);  // same packet, RAW -> split
  a.halt();
  auto s = test::run_single_core(a.assemble());
  EXPECT_EQ(s.core(0).reg(2), 6u);
  EXPECT_GE(s.core(0).perf().splits, 1u);
}

TEST(Pipeline, DivideStallsButComputes) {
  Assembler a(mem::kFlashBase);
  a.addi(R1, R0, 100);
  a.addi(R2, R0, 7);
  a.div(R3, R1, R2);
  a.rem(R4, R1, R2);
  a.add(R5, R3, R4);  // depends on both
  a.halt();
  auto s = test::run_single_core(a.assemble());
  EXPECT_EQ(s.core(0).reg(3), 14u);
  EXPECT_EQ(s.core(0).reg(4), 2u);
  EXPECT_EQ(s.core(0).reg(5), 16u);
}

TEST(Pipeline, AmoAddFetchesOld) {
  Assembler a(mem::kFlashBase);
  a.li(R10, mem::kSramBase + 0x1000);
  a.addi(R1, R0, 3);
  a.sw(R1, R10, 0);
  a.addi(R2, R0, 4);
  a.amoadd(R5, R10, R2);
  a.lw(R6, R10, 0);
  a.halt();
  auto s = test::run_single_core(a.assemble());
  EXPECT_EQ(s.core(0).reg(5), 3u);
  EXPECT_EQ(s.core(0).reg(6), 7u);
}

TEST(Pipeline, CachedExecutionMatchesUncached) {
  auto build = [](bool cached) {
    Assembler a(mem::kFlashBase);
    if (cached) {
      a.li(R1, isa::kCacheOpInvI | isa::kCacheOpInvD);
      a.csrw(Csr::kCacheOp, R1);
      a.li(R1, isa::kCacheCfgIEn | isa::kCacheCfgDEn | isa::kCacheCfgWriteAllocate);
      a.csrw(Csr::kCacheCfg, R1);
    }
    a.li(R10, mem::kSramBase + 0x2000);
    a.addi(R2, R0, 0);
    a.addi(R3, R0, 20);
    a.label("loop");
    a.sw(R2, R10, 0);
    a.lw(R4, R10, 0);
    a.add(R2, R4, R3);
    a.addi(R3, R3, -1);
    a.bne(R3, R0, "loop");
    a.halt();
    return a.assemble();
  };
  auto s_unc = test::run_single_core(build(false));
  auto s_cch = test::run_single_core(build(true));
  EXPECT_EQ(s_unc.core(0).reg(2), s_cch.core(0).reg(2));
  EXPECT_GT(s_cch.core(0).memsys().dcache().stats().hits, 0u);
}

TEST(Pipeline, IfStallsCountedOnUncachedFetch) {
  Assembler a(mem::kFlashBase);
  for (int i = 0; i < 64; ++i) a.addi(R1, R1, 1);
  a.halt();
  auto s = test::run_single_core(a.assemble());
  EXPECT_GT(s.core(0).perf().if_stalls, 0u);
}

TEST(Pipeline, R64PairArithmetic) {
  soc::SocConfig cfg;
  Assembler a(mem::kFlashBase);
  a.li(R2, 0xffffffff);  // low
  a.li(R3, 0x0);         // high -> pair r2 = 0x00000000_ffffffff
  a.li(R4, 0x1);
  a.li(R5, 0x0);         // pair r4 = 1
  a.add64(R6, R2, R4);   // = 0x1_00000000
  a.halt();
  soc::Soc s(cfg);
  auto prog = a.assemble();
  s.load_program(prog);
  s.set_boot(2, prog.entry());  // core C has the R64 extension
  s.reset();
  s.run(100000);
  EXPECT_EQ(s.core(2).reg(6), 0u);
  EXPECT_EQ(s.core(2).reg(7), 1u);
}

TEST(Pipeline, R64ForwardingThroughPairs) {
  Assembler a(mem::kFlashBase);
  a.li(R2, 5);
  a.li(R3, 0);
  a.li(R4, 7);
  a.li(R5, 0);
  a.add64(R6, R2, R4);
  a.add64(R8, R6, R2);   // depends on the previous pair result
  a.add64(R10, R8, R8);
  a.halt();
  soc::Soc s;
  auto prog = a.assemble();
  s.load_program(prog);
  s.set_boot(2, prog.entry());
  s.reset();
  s.run(100000);
  EXPECT_EQ(s.core(2).reg(10), 34u);
  EXPECT_EQ(s.core(2).reg(11), 0u);
}

TEST(Pipeline, MixedWidthInterlockIsCorrect) {
  // A 32-bit write into a pair half consumed by a 64-bit op must interlock.
  Assembler a(mem::kFlashBase);
  a.li(R4, 1);
  a.li(R5, 0);
  a.addi(R3, R0, 9);   // writes the high half of pair r2
  a.addi(R2, R0, 1);   // low half
  a.add64(R6, R2, R4); // reads pair r2 right after
  a.halt();
  soc::Soc s;
  auto prog = a.assemble();
  s.load_program(prog);
  s.set_boot(2, prog.entry());
  s.reset();
  s.run(100000);
  EXPECT_EQ(s.core(2).reg(6), 2u);
  EXPECT_EQ(s.core(2).reg(7), 9u);
}

// ----------------------------------------------------------------------------
// Randomized differential sweep vs. the functional reference executor
// ----------------------------------------------------------------------------

struct DiffProgram {
  isa::Program prog;
};

DiffProgram random_program(u64 seed, bool r64_ops) {
  Rng rng(seed);
  Assembler a(mem::kFlashBase + rng.below(64) * 4096);
  constexpr unsigned kLen = 120;

  // Pre-plan branch skip distances so labels can be placed while emitting.
  std::vector<unsigned> kind(kLen);
  for (auto& k : kind) k = static_cast<unsigned>(rng.below(100));

  auto reg = [&](void) { return static_cast<Reg>(1 + rng.below(15)); };
  auto even_reg = [&](void) { return static_cast<Reg>(2 + 2 * rng.below(7)); };

  a.li(R20, mem::kDtcmBase + 256);  // scratch base
  a.li(R21, mem::kSramBase + 0x4000);
  for (unsigned i = 0; i < kLen; ++i) {
    a.label("L" + std::to_string(i));
    const unsigned k = kind[i];
    if (k < 35) {
      static constexpr Op kRops[] = {Op::kAdd, Op::kSub, Op::kAnd, Op::kOr,
                                     Op::kXor, Op::kNor, Op::kSlt, Op::kSltu,
                                     Op::kSll, Op::kSrl, Op::kSra, Op::kMul,
                                     Op::kMulh, Op::kAddv, Op::kSubv};
      const Op op = kRops[rng.below(std::size(kRops))];
      switch (op) {
        case Op::kAdd: a.add(reg(), reg(), reg()); break;
        case Op::kSub: a.sub(reg(), reg(), reg()); break;
        case Op::kAnd: a.and_(reg(), reg(), reg()); break;
        case Op::kOr: a.or_(reg(), reg(), reg()); break;
        case Op::kXor: a.xor_(reg(), reg(), reg()); break;
        case Op::kNor: a.nor_(reg(), reg(), reg()); break;
        case Op::kSlt: a.slt(reg(), reg(), reg()); break;
        case Op::kSltu: a.sltu(reg(), reg(), reg()); break;
        case Op::kSll: a.sll(reg(), reg(), reg()); break;
        case Op::kSrl: a.srl(reg(), reg(), reg()); break;
        case Op::kSra: a.sra(reg(), reg(), reg()); break;
        case Op::kMul: a.mul(reg(), reg(), reg()); break;
        case Op::kMulh: a.mulh(reg(), reg(), reg()); break;
        case Op::kAddv: a.addv(reg(), reg(), reg()); break;
        default: a.subv(reg(), reg(), reg()); break;
      }
    } else if (k < 55) {
      const i32 imm = static_cast<i32>(rng.range(0, 4000)) - 2000;
      switch (rng.below(5)) {
        case 0: a.addi(reg(), reg(), imm); break;
        case 1: a.andi(reg(), reg(), static_cast<u32>(imm) & 0xffff); break;
        case 2: a.xori(reg(), reg(), static_cast<u32>(imm) & 0xffff); break;
        case 3: a.slli(reg(), reg(), static_cast<u32>(rng.below(31))); break;
        default: a.srai(reg(), reg(), static_cast<u32>(rng.below(31))); break;
      }
    } else if (k < 70) {
      const Reg base = rng.chance(0.5) ? R20 : R21;
      const i32 off = static_cast<i32>(rng.below(16)) * 4;
      if (rng.chance(0.5)) {
        a.sw(reg(), base, off);
      } else {
        a.lw(reg(), base, off);
      }
    } else if (k < 76) {
      const Reg base = rng.chance(0.5) ? R20 : R21;
      const i32 off = static_cast<i32>(rng.below(32));
      if (rng.chance(0.5)) a.sb(reg(), base, off);
      else a.lbu(reg(), base, off);
    } else if (k < 82 && r64_ops) {
      a.add64(even_reg(), even_reg(), even_reg());
    } else if (k < 84) {
      a.div(reg(), reg(), reg());
    } else if (k < 92 && i + 6 < kLen) {
      const unsigned target = i + 2 + static_cast<unsigned>(rng.below(4));
      if (rng.chance(0.5)) a.beq(reg(), reg(), "L" + std::to_string(target));
      else a.bne(reg(), reg(), "L" + std::to_string(target));
      // Fill the skipped range requirement: labels are emitted per index, so
      // nothing else to do.
    } else {
      a.addi(reg(), reg(), 1);
    }
  }
  // Terminate, and give skipped branch targets a landing pad.
  for (unsigned i = kLen; i < kLen + 8; ++i) a.label("L" + std::to_string(i));
  a.halt();
  return DiffProgram{a.assemble()};
}

class Differential : public ::testing::TestWithParam<int> {};

TEST_P(Differential, PipelineMatchesReference) {
  const u64 seed = static_cast<u64>(GetParam()) * 0x9e3779b9u + 17;
  const bool use_core_c = GetParam() % 3 == 0;
  const unsigned core_id = use_core_c ? 2 : 0;
  const bool cached = GetParam() % 2 == 0;
  DiffProgram dp = random_program(seed, use_core_c);

  // Reference run.
  isa::FlatMemory ref_mem;
  ref_mem.load_program(dp.prog);
  isa::RefExec ref(use_core_c ? CoreKind::kC : CoreKind::kA, ref_mem);
  ref.reset(dp.prog.entry());

  // Pipeline run.
  soc::Soc s;
  s.load_program(dp.prog);
  s.set_boot(core_id, dp.prog.entry());
  s.reset();
  if (cached) {
    // Enable caches through the debug path: set config directly.
    s.core(core_id).memsys().set_cache_cfg(isa::kCacheCfgIEn | isa::kCacheCfgDEn |
                                           isa::kCacheCfgWriteAllocate);
  }

  // Identical initial register state.
  Rng rng(seed ^ 0xabcdef);
  for (unsigned r = 1; r < 16; ++r) {
    const u32 v = rng.next_u32();
    ref.set_reg(r, v);
    s.core(core_id).set_reg(r, v);
  }

  ref.run(100000);
  ASSERT_TRUE(ref.halted()) << "reference did not halt";
  auto res = s.run(2000000);
  ASSERT_FALSE(res.timed_out) << "pipeline did not halt";

  for (unsigned r = 1; r < 22; ++r)
    EXPECT_EQ(s.core(core_id).reg(r), ref.reg(r)) << "r" << r << " seed " << seed;
  EXPECT_EQ(s.core(core_id).perf().instret, ref.instret()) << "seed " << seed;

  // Compare the DTCM and SRAM scratch regions.
  for (u32 off = 0; off < 64; off += 4) {
    EXPECT_EQ(s.debug_read32(core_id, mem::kDtcmBase + 256 + off),
              ref_mem.load(mem::kDtcmBase + 256 + off, 4))
        << "dtcm off " << off << " seed " << seed;
    EXPECT_EQ(s.debug_read32(core_id, mem::kSramBase + 0x4000 + off),
              ref_mem.load(mem::kSramBase + 0x4000 + off, 4))
        << "sram off " << off << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Differential, ::testing::Range(0, 40));

}  // namespace
}  // namespace detstl
