// The paper's core claims as executable invariants:
//  * every wrapper kind runs fault-free to PASS;
//  * cache-based execution yields a bit-identical signature across active-core
//    counts, start staggers, code positions and alignments (determinism);
//  * plain (no-cache) execution of the PC-based routine in a multi-core
//    scenario fails against its single-core golden (instability);
//  * the no-write-allocate dummy-load rule restores determinism;
//  * the TCM wrapper reserves TCM bytes, the cache wrapper reserves none;
//  * a multi-core STL suite with barriers completes with all-pass verdicts.

#include <gtest/gtest.h>

#include <set>

#include "core/routines.h"
#include "core/stl.h"
#include "testutil.h"

namespace detstl::core {
namespace {

using isa::CoreKind;

BuildEnv env_for(unsigned core_id, CoreKind kind) {
  BuildEnv env;
  env.core_id = core_id;
  env.kind = kind;
  env.code_base = mem::kFlashBase + 0x2000 + core_id * 0x10000;
  env.data_base = default_data_base(core_id);
  return env;
}

/// Run `built` on its core with `active` other cores executing `noise`
/// programs (their own copies of the same routine), returning the verdict.
TestVerdict run_multicore(const BuiltTest& built,
                          const std::vector<BuiltTest>& noise,
                          const std::array<u32, 3>& stagger) {
  soc::SocConfig cfg;
  cfg.start_delay = stagger;
  soc::Soc soc(cfg);
  soc.load_program(built.prog);
  soc.set_boot(built.env.core_id, built.prog.entry());
  for (const auto& n : noise) {
    soc.load_program(n.prog);
    soc.set_boot(n.env.core_id, n.prog.entry());
  }
  soc.reset();
  const auto res = soc.run(10'000'000);
  EXPECT_FALSE(res.timed_out);
  return read_verdict(soc, built.env.mailbox != 0
                                ? built.env.mailbox
                                : soc::mailbox_addr(built.env.core_id));
}

// ----------------------------------------------------------------------------
// Fault-free pass, all wrappers x a representative routine set
// ----------------------------------------------------------------------------

class WrapperKindTest : public ::testing::TestWithParam<int> {};

TEST_P(WrapperKindTest, FaultFreeSelfTestPasses) {
  const auto w = static_cast<WrapperKind>(GetParam());
  for (auto make : {make_alu_test, make_shifter_test, make_branch_test}) {
    const auto routine = make();
    const BuiltTest bt = build_wrapped(*routine, w, env_for(0, CoreKind::kA));
    const TestVerdict v = run_multicore(bt, {}, {0, 0, 0});
    EXPECT_EQ(v.status, soc::kStatusPass) << routine->name() << " / " << wrapper_name(w);
    EXPECT_EQ(v.signature, bt.golden);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWrappers, WrapperKindTest, ::testing::Values(0, 1, 2));

TEST(Wrapper, FwdTestPassesOnEveryCore) {
  for (unsigned core = 0; core < 3; ++core) {
    const auto kind = static_cast<CoreKind>(core);
    const auto routine = make_fwd_test(true);
    const BuiltTest bt =
        build_wrapped(*routine, WrapperKind::kCacheBased, env_for(core, kind));
    const TestVerdict v = run_multicore(bt, {}, {0, 0, 0});
    EXPECT_EQ(v.status, soc::kStatusPass) << "core " << core;
  }
}

TEST(Wrapper, IcuTestPassesOnEveryCore) {
  for (unsigned core = 0; core < 3; ++core) {
    const auto kind = static_cast<CoreKind>(core);
    const auto routine = make_icu_test();
    const BuiltTest bt =
        build_wrapped(*routine, WrapperKind::kCacheBased, env_for(core, kind));
    const TestVerdict v = run_multicore(bt, {}, {0, 0, 0});
    EXPECT_EQ(v.status, soc::kStatusPass) << "core " << core;
    EXPECT_EQ(v.signature, bt.golden);
  }
}

// ----------------------------------------------------------------------------
// THE determinism invariant (paper Sec. III)
// ----------------------------------------------------------------------------

struct Scenario {
  unsigned active_cores;
  std::array<u32, 3> stagger;
  u32 position_offset;
};

// Position offsets are issue-packet (8-byte) aligned: the STL binary ships
// packet-aligned (sub-packet placement would change the dual-issue pairing
// itself, i.e. a different instruction stream, not a contention effect).
// Offsets still sweep the flash-line phase (mod 32), the knob that makes the
// *uncached* runs oscillate.
const Scenario kScenarios[] = {
    {1, {0, 0, 0}, 0},          {2, {0, 3, 0}, 0},
    {3, {0, 5, 11}, 0},         {3, {7, 0, 2}, 0},
    {3, {0, 1, 2}, 0x20000},    {3, {4, 9, 1}, 0x20008},
    {2, {13, 2, 0}, 0x40010},   {3, {1, 1, 1}, 0x40018},
};

TEST(Determinism, CacheWrappedSignatureIsScenarioInvariant) {
  for (auto make : {+[] { return make_fwd_test(true); }, +[] { return make_icu_test(); }}) {
    const auto routine = make();
    std::set<u32> signatures;
    for (const Scenario& sc : kScenarios) {
      // Rebuild at the scenario's flash position (golden must not move).
      BuildEnv env = env_for(0, CoreKind::kA);
      env.code_base += sc.position_offset;
      const BuiltTest bt = build_wrapped(*routine, WrapperKind::kCacheBased, env);

      std::vector<BuiltTest> noise;
      for (unsigned c = 1; c < sc.active_cores; ++c) {
        BuildEnv ne = env_for(c, static_cast<CoreKind>(c));
        ne.code_base += sc.position_offset;
        noise.push_back(build_wrapped(*routine, WrapperKind::kCacheBased, ne));
      }
      const TestVerdict v = run_multicore(bt, noise, sc.stagger);
      EXPECT_EQ(v.status, soc::kStatusPass)
          << routine->name() << " cores=" << sc.active_cores;
      signatures.insert(v.signature);
    }
    EXPECT_EQ(signatures.size(), 1u)
        << routine->name() << ": signature varied across scenarios";
  }
}

TEST(Determinism, PlainPcRoutineFailsUnderContention) {
  // The PC-based HDCU routine without the cache strategy: calibrated
  // single-core, then executed with all three cores active. Table III:
  // "the test procedures inevitably failed in any configuration".
  const auto routine = make_fwd_test(true);
  BuildEnv env = env_for(0, CoreKind::kA);
  env.use_perf_counters = true;
  const BuiltTest bt = build_wrapped(*routine, WrapperKind::kPlain, env);

  // Sanity: single-core it passes.
  EXPECT_EQ(run_multicore(bt, {}, {0, 0, 0}).status, soc::kStatusPass);

  std::vector<BuiltTest> noise;
  for (unsigned c = 1; c < 3; ++c) {
    BuildEnv ne = env_for(c, static_cast<CoreKind>(c));
    ne.use_perf_counters = true;
    noise.push_back(build_wrapped(*routine, WrapperKind::kPlain, ne));
  }
  unsigned failures = 0;
  for (const auto& stagger : {std::array<u32, 3>{0, 3, 7}, {5, 0, 2}, {1, 9, 4}}) {
    if (run_multicore(bt, noise, stagger).status == soc::kStatusFail) ++failures;
  }
  EXPECT_GT(failures, 0u) << "contention never destabilised the PC signature";
}

TEST(Determinism, IcuPlainFailsUnderContention) {
  const auto routine = make_icu_test();
  const BuiltTest bt = build_wrapped(*routine, WrapperKind::kPlain, env_for(0, CoreKind::kA));
  EXPECT_EQ(run_multicore(bt, {}, {0, 0, 0}).status, soc::kStatusPass);

  std::vector<BuiltTest> noise;
  for (unsigned c = 1; c < 3; ++c)
    noise.push_back(build_wrapped(*routine, WrapperKind::kPlain,
                                  env_for(c, static_cast<CoreKind>(c))));
  unsigned failures = 0;
  for (const auto& stagger : {std::array<u32, 3>{0, 3, 7}, {5, 0, 2}, {1, 9, 4}}) {
    if (run_multicore(bt, noise, stagger).status == soc::kStatusFail) ++failures;
  }
  EXPECT_GT(failures, 0u);
}

// ----------------------------------------------------------------------------
// No-write-allocate policy and the dummy-load rule (paper Sec. III step 1)
// ----------------------------------------------------------------------------

TEST(Determinism, NoWriteAllocateWithDummyLoadsIsStable) {
  const auto routine = make_fwd_test(true);
  BuildEnv env = env_for(0, CoreKind::kA);
  env.write_allocate = false;  // wrapper auto-enables the dummy-load fix-up
  env.use_perf_counters = true;
  const BuiltTest bt = build_wrapped(*routine, WrapperKind::kCacheBased, env);

  std::vector<BuiltTest> noise;
  for (unsigned c = 1; c < 3; ++c) {
    BuildEnv ne = env_for(c, static_cast<CoreKind>(c));
    ne.write_allocate = false;
    noise.push_back(build_wrapped(*routine, WrapperKind::kCacheBased, ne));
  }
  for (const auto& stagger : {std::array<u32, 3>{0, 3, 7}, {5, 0, 2}}) {
    const TestVerdict v = run_multicore(bt, noise, stagger);
    EXPECT_EQ(v.status, soc::kStatusPass);
    EXPECT_EQ(v.signature, bt.golden);
  }
}

// ----------------------------------------------------------------------------
// TCM wrapper bookkeeping (Table IV inputs)
// ----------------------------------------------------------------------------

TEST(TcmWrapper, ReservesTcmBytesAndPasses) {
  const auto routine = make_icu_test();
  const BuiltTest tcm =
      build_wrapped(*routine, WrapperKind::kTcmBased, env_for(0, CoreKind::kA));
  const BuiltTest cache =
      build_wrapped(*routine, WrapperKind::kCacheBased, env_for(0, CoreKind::kA));
  EXPECT_GT(tcm.tcm_bytes, 0u);
  EXPECT_EQ(cache.tcm_bytes, 0u);
  EXPECT_EQ(run_multicore(tcm, {}, {0, 0, 0}).status, soc::kStatusPass);
}

// ----------------------------------------------------------------------------
// Suite + decentralised barriers across three cores
// ----------------------------------------------------------------------------

TEST(Suite, TripleCoreBarrieredStlAllPass) {
  auto stl0 = make_boot_stl();
  auto stl1 = make_boot_stl();
  auto stl2 = make_boot_stl();
  std::array<std::vector<std::unique_ptr<SelfTestRoutine>>*, 3> stls = {&stl0, &stl1,
                                                                        &stl2};
  soc::Soc soc;
  std::vector<BuiltSuite> suites;
  for (unsigned c = 0; c < 3; ++c) {
    SuiteSpec spec;
    for (const auto& r : *stls[c]) spec.routines.push_back(r.get());
    spec.wrapper = WrapperKind::kCacheBased;
    spec.env = env_for(c, static_cast<CoreKind>(c));
    spec.barriers = true;
    spec.barrier_cores = 3;
    suites.push_back(build_suite(spec));
    soc.load_program(suites.back().prog);
    soc.set_boot(c, suites.back().prog.entry());
  }
  soc.reset();
  const auto res = soc.run(30'000'000);
  ASSERT_FALSE(res.timed_out);
  for (unsigned c = 0; c < 3; ++c) {
    const auto verdicts = read_suite_verdicts(soc, suites[c]);
    ASSERT_EQ(verdicts.size(), 5u);
    for (unsigned i = 0; i < verdicts.size(); ++i) {
      EXPECT_EQ(verdicts[i].status, soc::kStatusPass)
          << "core " << c << " test " << suites[c].names[i];
      EXPECT_EQ(verdicts[i].signature, suites[c].goldens[i]);
    }
  }
}

}  // namespace
}  // namespace detstl::core
