// stlserve orchestration layer (src/serve/): spec parsing, shard planning,
// and the supervision ladder end-to-end in fork mode — worker kill →
// respawn, hung worker → watchdog SIGKILL, corrupt journal → quarantine,
// respawn exhaustion → in-process fallback — with the headline contract
// that the merged multi-process result is byte-identical to the
// single-process `stlrun campaign` run at 1/2/4 workers, no matter what
// was killed, hung or corrupted along the way. Also covers the manifest
// advisory lock (live-writer refusal, stale-lock takeover) and the forked-
// worker drain-handler reset.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/routines.h"
#include "exp/experiments.h"
#include "fault/campaign.h"
#include "fault/checkpoint.h"
#include "runtime/campaign.h"
#include "serve/serve.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace fs = std::filesystem;

namespace detstl::serve {
namespace {

// Documented shard layout (fault/checkpoint.h): header is 56 bytes, payload
// follows. Used to place bit-flips for the corruption drills.
constexpr std::size_t kShardHeaderBytes = 56;

/// Fresh scratch directory under the gtest temp root; wiped up-front so a
/// crashed earlier run can never leak shards into this one.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("detstl-serve-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<u8> read_all(const fs::path& p) {
  std::vector<u8> out;
  std::FILE* f = std::fopen(p.c_str(), "rb");
  EXPECT_NE(f, nullptr) << p;
  if (f == nullptr) return out;
  u8 buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    out.insert(out.end(), buf, buf + n);
  std::fclose(f);
  return out;
}

void write_all(const fs::path& p, const std::vector<u8>& bytes) {
  std::FILE* f = std::fopen(p.c_str(), "wb");
  ASSERT_NE(f, nullptr) << p;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

bool any_entry_matching(const fs::path& dir, const std::string& needle) {
  if (!fs::exists(dir)) return false;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().filename().string().find(needle) != std::string::npos)
      return true;
  return false;
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(ServeSpecJson, ExampleParsesAndRoundTrips) {
  ServeSpec s;
  std::string err;
  ASSERT_TRUE(parse_spec(example_spec_json(), s, &err)) << err;
  EXPECT_EQ(s.kind, "disturbance");
  EXPECT_EQ(s.seed, 0xD171u);
  EXPECT_EQ(s.runs, 200u);
  EXPECT_EQ(s.workers, 4u);
  ASSERT_EQ(s.routines.size(), 3u);
  EXPECT_EQ(s.routines[0], "alu");

  // Canonical serialisation is a fixpoint: parse(to_json(s)) == to_json(s).
  const std::string json = spec_to_json(s);
  ServeSpec back;
  ASSERT_TRUE(parse_spec(json, back, &err)) << err;
  EXPECT_EQ(spec_to_json(back), json);
}

TEST(ServeSpecJson, SeedAcceptsNumberAndString) {
  ServeSpec s;
  ASSERT_TRUE(parse_spec("{\"seed\": 4242}", s, nullptr));
  EXPECT_EQ(s.seed, 4242u);
  ASSERT_TRUE(parse_spec("{\"seed\": \"0xd171\"}", s, nullptr));
  EXPECT_EQ(s.seed, 0xD171u);
  EXPECT_FALSE(parse_spec("{\"seed\": \"0xd171 junk\"}", s, nullptr));
}

TEST(ServeSpecJson, StrictParseRejectsBadInput) {
  ServeSpec s;
  std::string err;
  // Unknown key: a typo must not silently run a different campaign.
  EXPECT_FALSE(parse_spec("{\"run\": 8}", s, &err));
  EXPECT_NE(err.find("unknown key"), std::string::npos) << err;
  // Wrong kind, wrong types, out-of-range values, syntax errors.
  EXPECT_FALSE(parse_spec("{\"kind\": \"soak\"}", s, &err));
  EXPECT_FALSE(parse_spec("{\"module\": \"alu\"}", s, &err));
  EXPECT_FALSE(parse_spec("{\"stride\": 0}", s, &err));
  EXPECT_FALSE(parse_spec("{\"runs\": \"many\"}", s, &err));
  EXPECT_FALSE(parse_spec("{\"cores\": 4}", s, &err));
  EXPECT_FALSE(parse_spec("{\"permanent\": 101}", s, &err));
  EXPECT_FALSE(parse_spec("{\"routines\": [1]}", s, &err));
  EXPECT_FALSE(parse_spec("{\"runs\": 8", s, &err));
  EXPECT_FALSE(parse_spec("[]", s, &err));
}

TEST(ServeSpecJson, FaultKindParsesAndRoundTrips) {
  ServeSpec s;
  std::string err;
  ASSERT_TRUE(parse_spec(
      "{\"kind\": \"fault\", \"module\": \"icu\", \"stride\": 12, "
      "\"workers\": 3}",
      s, &err))
      << err;
  EXPECT_EQ(s.kind, "fault");
  EXPECT_EQ(s.module, "icu");
  EXPECT_EQ(s.stride, 12u);
  EXPECT_EQ(s.workers, 3u);

  const std::string json = spec_to_json(s);
  ServeSpec back;
  ASSERT_TRUE(parse_spec(json, back, &err)) << err;
  EXPECT_EQ(spec_to_json(back), json);
  EXPECT_EQ(back.module, "icu");
  EXPECT_EQ(back.stride, 12u);
}

// ---------------------------------------------------------------------------
// Shard planning and watchdog budgets (pure helpers)
// ---------------------------------------------------------------------------

TEST(ServePlan, ShardsPartitionContiguouslyWithRemainderUpFront) {
  const auto plans = plan_shards(10, 4, "w");
  ASSERT_EQ(plans.size(), 4u);
  EXPECT_EQ(plans[0].begin, 0u);
  EXPECT_EQ(plans[0].end, 3u);  // 10 = 3 + 3 + 2 + 2
  EXPECT_EQ(plans[1].end, 6u);
  EXPECT_EQ(plans[2].end, 8u);
  EXPECT_EQ(plans[3].end, 10u);
  EXPECT_EQ(plans[0].dir, "w/shard-00");
  EXPECT_EQ(plans[0].heartbeat, "w/shard-00/heartbeat");
  for (std::size_t i = 1; i < plans.size(); ++i)
    EXPECT_EQ(plans[i].begin, plans[i - 1].end);
}

TEST(ServePlan, NeverMoreShardsThanRunsAndAtLeastOne) {
  EXPECT_EQ(plan_shards(3, 8, "w").size(), 3u);  // one run per shard
  EXPECT_EQ(plan_shards(5, 0, "w").size(), 1u);  // workers=0 degrades to 1
  const auto one = plan_shards(1, 64, "w");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].end, 1u);
}

TEST(ServePlan, ShardBudgetIsGenerousAndFloored) {
  // No observed pace yet: only the floor applies.
  EXPECT_EQ(shard_budget_ms(0.0, 100, 5'000), 5'000u);
  // 16x the expected remaining time plus fixed slack.
  EXPECT_EQ(shard_budget_ms(10.0, 100, 0), 17'000u);
  // A tiny remaining workload still gets at least the floor.
  EXPECT_EQ(shard_budget_ms(0.5, 1, 60'000), 60'000u);
}

// ---------------------------------------------------------------------------
// Manifest advisory lock (fault/checkpoint.h CheckpointWriter)
// ---------------------------------------------------------------------------

TEST(ManifestLock, SecondWriterRefusedWhileOwnerIsAlive) {
  const auto dir = scratch_dir("lock-live");
  // A lock naming a LIVE process that is not us (the test runner's parent):
  // a second writer must fail fast, never interleave shard writes.
  const std::string body =
      "pid " + std::to_string(static_cast<long>(::getppid())) + "\nstart 0\n";
  write_all(dir / "manifest.lock",
            std::vector<u8>(body.begin(), body.end()));
  fault::CheckpointConfig cfg;
  cfg.dir = dir.string();
  cfg.fsync = fault::FsyncPolicy::kNone;
  EXPECT_THROW(fault::CheckpointWriter(cfg, fault::PayloadKind::kFaultOutcomes,
                                       1, 0, nullptr),
               fault::CheckpointMismatch);
}

TEST(ManifestLock, StaleLockIsBrokenAndReleasedOnDestruction) {
  const auto dir = scratch_dir("lock-stale");
  // A lock left by a dead owner (crashed or SIGKILLed worker): break it.
  const std::string body = "pid 999999999\nstart 0\n";
  write_all(dir / "manifest.lock",
            std::vector<u8>(body.begin(), body.end()));
  fault::CheckpointConfig cfg;
  cfg.dir = dir.string();
  cfg.fsync = fault::FsyncPolicy::kNone;
  {
    fault::CheckpointWriter w(cfg, fault::PayloadKind::kFaultOutcomes, 1, 0,
                              nullptr);
    ASSERT_TRUE(w.enabled());
    EXPECT_TRUE(fs::exists(dir / "manifest.lock"));  // re-claimed by us
  }
  EXPECT_FALSE(fs::exists(dir / "manifest.lock"));  // released with the writer
}

TEST(ManifestLock, ConstructorFailureReleasesTheLock) {
  const auto dir = scratch_dir("lock-ctor-throw");
  fault::CheckpointConfig cfg;
  cfg.dir = dir.string();
  cfg.fsync = fault::FsyncPolicy::kNone;
  cfg.resume = true;  // resume with no manifest: the constructor throws...
  EXPECT_THROW(fault::CheckpointWriter(cfg, fault::PayloadKind::kFaultOutcomes,
                                       1, 0, nullptr),
               fault::CheckpointMismatch);
  // ...and must not leak its just-claimed lock (a throwing constructor never
  // runs the destructor), or this still-live process would block everyone.
  EXPECT_FALSE(fs::exists(dir / "manifest.lock"));
  cfg.resume = false;
  fault::CheckpointWriter w(cfg, fault::PayloadKind::kFaultOutcomes, 1, 0,
                            nullptr);
  EXPECT_TRUE(w.enabled());
}

TEST(DrainHandlers, ResetForChildClearsInheritedStopState) {
  fault::install_drain_handlers();
  fault::install_drain_handlers();  // idempotent by contract
  fault::global_interrupt().request_stop();
  fault::global_interrupt().arm_after(3);
  fault::reset_for_child();
  EXPECT_FALSE(fault::global_interrupt().stop_requested());
  // The armed countdown was cleared too: completing units must not re-trip.
  for (int i = 0; i < 8; ++i) fault::global_interrupt().on_unit_complete();
  EXPECT_FALSE(fault::global_interrupt().stop_requested());
}

#ifndef _WIN32

// ---------------------------------------------------------------------------
// Orchestrated campaigns, fork mode (worker_exe empty = fork without exec)
// ---------------------------------------------------------------------------

ServeSpec small_spec() {
  ServeSpec s;
  s.seed = 0xC0FFEE42;
  s.runs = 8;
  s.cores = 2;
  s.routines = {"alu", "shifter"};
  s.events = 3;
  s.permanent = 50;
  s.workers = 2;
  s.checkpoint_interval = 1;  // journal every run: a kill loses nothing
  return s;
}

/// Straight single-process reference, computed once per test binary.
const runtime::CampaignResult& reference() {
  static const runtime::CampaignResult r =
      runtime::run_disturbance_campaign(to_campaign_spec(small_spec()));
  return r;
}

ServeConfig fast_cfg(const fs::path& dir) {
  ServeConfig c;
  c.work_dir = dir.string();
  c.poll_ms = 5;
  c.no_fsync = true;
  c.quiet = true;
  return c;
}

/// The whole point of src/serve/: whatever the supervision history, the
/// merged result is byte-identical to the single-process campaign.
void expect_identical(const runtime::CampaignResult& got) {
  const runtime::CampaignResult& ref = reference();
  EXPECT_EQ(got.outcome_vector(), ref.outcome_vector());
  EXPECT_EQ(got.digest(), ref.digest());
  EXPECT_EQ(runtime::render_recovery_report(got),
            runtime::render_recovery_report(ref));
}

TEST(ServeCampaign, MergedResultIdenticalAt1And2And4Workers) {
  for (unsigned workers : {1u, 2u, 4u}) {
    const auto dir = scratch_dir("identity-" + std::to_string(workers));
    ServeConfig cfg = fast_cfg(dir);
    cfg.workers = workers;
    const ServeResult sr = run_campaign(small_spec(), cfg);
    ASSERT_FALSE(sr.interrupted) << workers << " workers";
    EXPECT_EQ(sr.stats.shards, workers);
    EXPECT_EQ(sr.stats.respawns, 0u);
    EXPECT_EQ(sr.stats.fallbacks, 0u);
    // Every run came out of a shard journal; nothing was re-executed.
    EXPECT_EQ(sr.stats.records_resumed, small_spec().runs);
    EXPECT_EQ(sr.stats.merge_reexecuted, 0u);
    expect_identical(sr.result);
  }
}

TEST(ServeCampaign, HeartbeatRecordsCarryTheRunIndex) {
  const auto dir = scratch_dir("heartbeat");
  const ServeResult sr = run_campaign(small_spec(), fast_cfg(dir));
  ASSERT_FALSE(sr.interrupted);
  expect_identical(sr.result);

  // Every shard heartbeat is a sequence of 8-byte little-endian records,
  // one per completed run, carrying that run's index — what the supervisor
  // surfaces in its progress and hang notes. 8 runs over 2 workers: shard
  // 0 owns [0, 4), shard 1 owns [4, 8).
  const auto plans = plan_shards(small_spec().runs, 2, dir.string());
  ASSERT_EQ(plans.size(), 2u);
  for (const ShardPlan& p : plans) {
    const std::vector<u8> hb = read_all(p.heartbeat);
    ASSERT_EQ(hb.size(), (p.end - p.begin) * 8) << p.heartbeat;
    for (u64 i = 0; i < p.end - p.begin; ++i) {
      u64 run = 0;
      for (unsigned b = 0; b < 8; ++b)
        run |= static_cast<u64>(hb[i * 8 + b]) << (8 * b);
      // threads=1 workers complete runs in order.
      EXPECT_EQ(run, p.begin + i) << p.heartbeat;
    }
  }
}

TEST(ServeCampaign, FreshRunRefusesOccupiedWorkDir) {
  const auto dir = scratch_dir("occupied");
  const ServeResult sr = run_campaign(small_spec(), fast_cfg(dir));
  ASSERT_FALSE(sr.interrupted);
  // Starting over an existing campaign must be explicit (--resume).
  EXPECT_THROW(run_campaign(small_spec(), fast_cfg(dir)), std::runtime_error);
}

TEST(ServeCampaign, KilledWorkerIsRespawnedAndResumesItsJournal) {
  const auto dir = scratch_dir("chaos-kill");
  ServeConfig cfg = fast_cfg(dir);
  cfg.chaos.push_back({0, "kill-after", 2});  // shard 0 crashes after 2 runs
  cfg.backoff_base_ms = 10;
  const ServeResult sr = run_campaign(small_spec(), cfg);
  ASSERT_FALSE(sr.interrupted);
  EXPECT_GE(sr.stats.respawns, 1u);
  EXPECT_EQ(sr.stats.fallbacks, 0u);
  expect_identical(sr.result);
}

TEST(ServeCampaign, HungWorkerIsKilledByWatchdogAndRecovered) {
  const auto dir = scratch_dir("chaos-hang");
  ServeConfig cfg = fast_cfg(dir);
  cfg.chaos.push_back({1, "hang-after", 2});  // shard 1 wedges after 2 runs
  cfg.hang_timeout_ms = 400;
  cfg.backoff_base_ms = 10;
  const ServeResult sr = run_campaign(small_spec(), cfg);
  ASSERT_FALSE(sr.interrupted);
  EXPECT_GE(sr.stats.hung_killed, 1u);
  EXPECT_GE(sr.stats.respawns, 1u);
  expect_identical(sr.result);
}

TEST(ServeCampaign, RespawnExhaustionFallsBackToInProcessExecution) {
  const auto dir = scratch_dir("chaos-fallback");
  ServeConfig cfg = fast_cfg(dir);
  cfg.chaos.push_back({0, "kill-every", 1});  // EVERY spawn of shard 0 dies
  cfg.max_respawns = 1;
  cfg.backoff_base_ms = 10;
  const ServeResult sr = run_campaign(small_spec(), cfg);
  ASSERT_FALSE(sr.interrupted);
  EXPECT_GE(sr.stats.respawns, 1u);
  EXPECT_GE(sr.stats.fallbacks, 1u);  // supervisor finished the shard itself
  expect_identical(sr.result);
}

TEST(ServeCampaign, CorruptShardFileIsQuarantinedOnResume) {
  const auto dir = scratch_dir("corrupt-shard");
  const ServeResult first = run_campaign(small_spec(), fast_cfg(dir));
  ASSERT_FALSE(first.interrupted);

  // Bit-flip one record payload in shard 0's journal, then resume: the
  // worker quarantines the file (*.corrupt) and re-executes its range.
  const fs::path victim = dir / "shard-00" / "shard-000000.ckpt";
  ASSERT_TRUE(fs::exists(victim));
  auto bytes = read_all(victim);
  ASSERT_GT(bytes.size(), kShardHeaderBytes);
  bytes[kShardHeaderBytes + 9] ^= 0x40;
  write_all(victim, bytes);

  ServeConfig cfg = fast_cfg(dir);
  cfg.resume = true;
  const ServeResult sr = run_campaign(small_spec(), cfg);
  ASSERT_FALSE(sr.interrupted);
  EXPECT_TRUE(any_entry_matching(dir / "shard-00", ".corrupt"));
  expect_identical(sr.result);
}

TEST(ServeCampaign, CorruptManifestQuarantinesTheWholeSubdir) {
  const auto dir = scratch_dir("corrupt-manifest");
  const ServeResult first = run_campaign(small_spec(), fast_cfg(dir));
  ASSERT_FALSE(first.interrupted);

  // A bit-flipped manifest makes the worker refuse the whole journal
  // (exit code 2): the supervisor sets the subdir aside as evidence and
  // starts the shard over on a clean one.
  const fs::path manifest = dir / "shard-01" / "manifest.ckpt";
  ASSERT_TRUE(fs::exists(manifest));
  auto bytes = read_all(manifest);
  ASSERT_GT(bytes.size(), 16u);
  bytes[16] ^= 0x01;
  write_all(manifest, bytes);

  ServeConfig cfg = fast_cfg(dir);
  cfg.resume = true;
  cfg.backoff_base_ms = 10;
  const ServeResult sr = run_campaign(small_spec(), cfg);
  ASSERT_FALSE(sr.interrupted);
  EXPECT_GE(sr.stats.dirs_quarantined, 1u);
  EXPECT_TRUE(any_entry_matching(dir, "shard-01.corrupt"));
  expect_identical(sr.result);
}

// ---------------------------------------------------------------------------
// Fault-campaign sharding: ranges + post-hoc merge (fault/campaign.h)
// ---------------------------------------------------------------------------

fault::CampaignResult run_fwd_shard(const fs::path& ckpt_dir, u64 begin,
                                    u64 end,
                                    std::vector<std::string> merge = {}) {
  const auto routine = core::make_fwd_test(/*with_perf_counters=*/false);
  exp::Scenario sc{1, {0, 0, 0}, 0, 0, "serve"};
  auto tests = exp::build_scenario_tests(*routine, core::WrapperKind::kPlain,
                                         sc, 0, /*use_pcs=*/false);
  fault::CampaignConfig cc;
  cc.module = fault::Module::kFwd;
  cc.core_id = 0;
  cc.kind = isa::CoreKind::kA;
  cc.fault_stride = 8;
  cc.threads = 1;
  cc.unit_begin = begin;
  cc.unit_end = end;
  cc.merge_dirs = std::move(merge);
  if (!ckpt_dir.empty()) {
    cc.checkpoint.dir = ckpt_dir.string();
    cc.checkpoint.interval = 16;
    cc.checkpoint.fsync = fault::FsyncPolicy::kNone;
  }
  fault::Campaign campaign(cc, exp::scenario_factory(std::move(tests), sc, 0));
  return campaign.run();
}

TEST(ServeFaultShards, RangePartitionMergesByteIdentical) {
  const fault::CampaignResult base = run_fwd_shard({}, 0, 0);
  ASSERT_GT(base.simulated_faults, 16u);
  const u64 mid = base.simulated_faults / 2;

  const auto a = scratch_dir("fault-shard-a");
  const auto b = scratch_dir("fault-shard-b");
  (void)run_fwd_shard(a, 0, mid);
  (void)run_fwd_shard(b, mid, base.simulated_faults);

  // Merge both journals in a third process image: every fault is resumed
  // from a shard journal, nothing re-simulated, bytes identical.
  const fault::CampaignResult merged =
      run_fwd_shard({}, 0, 0, {a.string(), b.string()});
  EXPECT_EQ(merged.ckpt.records_resumed, base.simulated_faults);
  EXPECT_EQ(merged.canonical_bytes(), base.canonical_bytes());

  // A partial merge (one shard dir missing) re-executes the gap and still
  // converges — the property stlserve's degraded paths lean on.
  const fault::CampaignResult partial = run_fwd_shard({}, 0, 0, {a.string()});
  EXPECT_LT(partial.ckpt.records_resumed, base.simulated_faults);
  EXPECT_EQ(partial.canonical_bytes(), base.canonical_bytes());
}

TEST(ServeFaultShards, EmptyShardRangeIsRejected) {
  EXPECT_THROW(run_fwd_shard({}, 5, 5), std::runtime_error);
  EXPECT_THROW(run_fwd_shard({}, 7, 3), std::runtime_error);
}

TEST(ServeFaultShards, SupervisedFaultCampaignMatchesTheStraightRun) {
  // The full orchestration path for kind "fault": spec → shard planning
  // over the sampled fault list → forked workers journaling fault outcomes
  // → post-hoc merge — byte-identical to the single-process campaign the
  // same recipe runs above.
  ServeSpec spec;
  spec.kind = "fault";
  spec.module = "fwd";
  spec.stride = 8;
  spec.workers = 2;
  spec.checkpoint_interval = 16;
  const u64 units = spec_unit_count(spec);
  const fault::CampaignResult base = run_fwd_shard({}, 0, 0);
  ASSERT_EQ(units, base.simulated_faults);

  const auto dir = scratch_dir("fault-serve");
  const ServeResult sr = run_campaign(spec, fast_cfg(dir));
  ASSERT_FALSE(sr.interrupted);
  EXPECT_EQ(sr.stats.shards, 2u);
  EXPECT_EQ(sr.stats.records_resumed, base.simulated_faults);
  EXPECT_EQ(sr.stats.merge_reexecuted, 0u);
  EXPECT_EQ(sr.fault_result.canonical_bytes(), base.canonical_bytes());
}

#endif  // !_WIN32

}  // namespace
}  // namespace detstl::serve
