// Reference executor: the untimed architectural oracle. Directed checks for
// its own semantics (the differential sweep in test_pipeline.cpp covers the
// pipeline side).

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/refexec.h"

namespace detstl::isa {
namespace {

RefExec make(FlatMemory& mem, const Program& p, CoreKind kind = CoreKind::kA) {
  mem.load_program(p);
  RefExec r(kind, mem);
  r.reset(p.entry());
  return r;
}

TEST(RefExec, BasicArithmeticAndMemory) {
  Assembler a(0x1000);
  a.addi(R1, R0, 21);
  a.add(R2, R1, R1);
  a.li(R10, 0x8000);
  a.sw(R2, R10, 4);
  a.lw(R3, R10, 4);
  a.halt();
  FlatMemory mem;
  auto r = make(mem, a.assemble());
  r.run(100);
  EXPECT_TRUE(r.halted());
  EXPECT_EQ(r.reg(3), 42u);
  EXPECT_EQ(mem.load(0x8004, 4), 42u);
}

TEST(RefExec, PreciseTrapOnOverflow) {
  Assembler a(0x1000);
  a.la(R1, "isr");
  a.csrw(Csr::kMtvec, R1);
  a.li(R1, 0xf);
  a.csrw(Csr::kMie, R1);
  a.li(R1, kMstatusIe);
  a.csrw(Csr::kMstatus, R1);
  a.li(R2, 0x7fffffff);
  a.addi(R3, R0, 1);
  a.addv(R4, R2, R3);
  a.addi(R5, R0, 7);  // executes after the ISR returns
  a.halt();
  a.label("isr");
  a.addi(R20, R20, 1);
  a.csrr(R21, Csr::kMcause);
  a.eret();
  FlatMemory mem;
  auto r = make(mem, a.assemble());
  r.run(100);
  EXPECT_EQ(r.reg(20), 1u);
  EXPECT_EQ(r.reg(21), 0x1u);
  EXPECT_EQ(r.reg(5), 7u);
  EXPECT_EQ(r.event_count(IcuSource::kOverflow), 1u);
  // Precise: recognised immediately — MEPC is the instruction right after.
  EXPECT_EQ(r.csr(Csr::kMepc) - r.csr(Csr::kMfpc), 4u);
}

TEST(RefExec, MaskedEventOnlySetsPending) {
  Assembler a(0x1000);
  a.li(R2, 10);
  a.div(R3, R2, R0);
  a.halt();
  FlatMemory mem;
  auto r = make(mem, a.assemble());
  r.run(100);
  EXPECT_EQ(r.reg(3), 0xffffffffu);
  EXPECT_EQ(r.csr(Csr::kMip), 0x2u);  // div-by-zero pending, no trap (mie=0)
  EXPECT_EQ(r.event_count(IcuSource::kDivZero), 1u);
}

TEST(RefExec, CoreCCauseMapping) {
  Assembler a(0x1000);
  a.la(R1, "isr");
  a.csrw(Csr::kMtvec, R1);
  a.li(R1, 0xf);
  a.csrw(Csr::kMie, R1);
  a.li(R1, kMstatusIe);
  a.csrw(Csr::kMstatus, R1);
  a.csrw(Csr::kMswi, R1);
  a.halt();
  a.label("isr");
  a.csrr(R21, Csr::kMcause);
  a.eret();
  FlatMemory mem;
  auto r = make(mem, a.assemble(), CoreKind::kC);
  r.run(100);
  EXPECT_EQ(r.reg(21), 0x8u);  // distinct bit on core C
}

TEST(RefExec, PairArithmeticOnCoreC) {
  Assembler a(0x1000);
  a.li(R2, 0xffffffff);
  a.li(R3, 0);
  a.li(R4, 2);
  a.li(R5, 0);
  a.add64(R6, R2, R4);
  a.halt();
  FlatMemory mem;
  auto r = make(mem, a.assemble(), CoreKind::kC);
  r.run(100);
  EXPECT_EQ(r.reg_pair(6), 0x1'0000'0001ull);
}

TEST(RefExec, AmoAdd) {
  Assembler a(0x1000);
  a.li(R10, 0x9000);
  a.addi(R1, R0, 5);
  a.sw(R1, R10, 0);
  a.addi(R2, R0, 3);
  a.amoadd(R3, R10, R2);
  a.halt();
  FlatMemory mem;
  auto r = make(mem, a.assemble());
  r.run(100);
  EXPECT_EQ(r.reg(3), 5u);
  EXPECT_EQ(mem.load(0x9000, 4), 8u);
}

TEST(RefExec, RunBoundsSteps) {
  Assembler a(0x1000);
  a.label("spin");
  a.beq(R0, R0, "spin");
  FlatMemory mem;
  auto r = make(mem, a.assemble());
  EXPECT_EQ(r.run(500), 500u);
  EXPECT_FALSE(r.halted());
}

TEST(RefExec, InstretCountsRetired) {
  Assembler a(0x1000);
  for (int i = 0; i < 10; ++i) a.addi(R1, R1, 1);
  a.halt();
  FlatMemory mem;
  auto r = make(mem, a.assemble());
  r.run(100);
  EXPECT_EQ(r.instret(), 11u);
  EXPECT_EQ(r.csr(Csr::kInstret), 11u);
}

}  // namespace
}  // namespace detstl::isa
