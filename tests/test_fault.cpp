// Fault-simulation engine: detection of known-bad faults, excitation
// screening soundness, checkpoint-placement invariance (the engine's central
// correctness property), marker-mode loading-loop immunity, and sampling.

#include <gtest/gtest.h>

#include "core/routines.h"
#include "exp/experiments.h"
#include "fault/report.h"

namespace detstl::fault {
namespace {

using core::WrapperKind;

CampaignResult run_icu_campaign(WrapperKind w, unsigned cores, u32 stride,
                                u32 checkpoint_every) {
  const auto routine = core::make_icu_test();
  exp::Scenario sc{cores, {0, 3, 7}, 0, 0, "t"};
  auto tests = exp::build_scenario_tests(*routine, w, sc, 0, false);
  CampaignConfig cc;
  cc.module = Module::kIcu;
  cc.core_id = 0;
  cc.kind = isa::CoreKind::kA;
  cc.fault_stride = stride;
  cc.checkpoint_every = checkpoint_every;
  cc.signature_from_marker = w == WrapperKind::kCacheBased;
  Campaign campaign(cc, exp::scenario_factory(std::move(tests), sc, 0));
  return campaign.run();
}

TEST(Campaign, FaultFreeRunPassesAndFaultsAreFound) {
  const auto res = run_icu_campaign(WrapperKind::kPlain, 1, 2, 4096);
  EXPECT_EQ(res.good_verdict.status, soc::kStatusPass);
  EXPECT_GT(res.total_faults, 100u);
  EXPECT_GT(res.detected, res.simulated_faults / 2);
  EXPECT_LE(res.detected, res.excited);
  EXPECT_EQ(res.detected,
            res.detected_signature + res.detected_verdict + res.detected_watchdog);
  EXPECT_GT(res.coverage_percent(), 50.0);
  EXPECT_LE(res.coverage_percent(), 100.0);
}

TEST(Campaign, CheckpointPlacementDoesNotChangeOutcomes) {
  // The same campaign with dense and sparse checkpoints must classify every
  // fault identically: restoring from a checkpoint is a pure optimisation.
  const auto dense = run_icu_campaign(WrapperKind::kCacheBased, 3, 3, 256);
  const auto sparse = run_icu_campaign(WrapperKind::kCacheBased, 3, 3, 1'000'000);
  ASSERT_EQ(dense.outcomes.size(), sparse.outcomes.size());
  for (std::size_t i = 0; i < dense.outcomes.size(); ++i) {
    const bool d1 = dense.outcomes[i] != FaultOutcome::kNotExcited &&
                    dense.outcomes[i] != FaultOutcome::kUndetected;
    const bool d2 = sparse.outcomes[i] != FaultOutcome::kNotExcited &&
                    sparse.outcomes[i] != FaultOutcome::kUndetected;
    ASSERT_EQ(d1, d2) << "fault " << i << " detection differs with checkpointing";
  }
  EXPECT_EQ(dense.detected, sparse.detected);
}

TEST(Campaign, StrideSamplesDeterministically) {
  const auto full = run_icu_campaign(WrapperKind::kPlain, 1, 1, 4096);
  const auto half = run_icu_campaign(WrapperKind::kPlain, 1, 2, 4096);
  EXPECT_EQ(full.total_faults, half.total_faults);
  EXPECT_EQ(half.simulated_faults, (full.total_faults + 1) / 2);
  // The sampled estimate tracks the exhaustive coverage.
  EXPECT_NEAR(half.coverage_percent(), full.coverage_percent(), 10.0);
}

TEST(Campaign, ExcitedNeverLessThanDetected) {
  const auto res = run_icu_campaign(WrapperKind::kCacheBased, 3, 2, 4096);
  EXPECT_GE(res.excited, res.detected);
  unsigned not_excited = 0;
  for (auto o : res.outcomes)
    if (o == FaultOutcome::kNotExcited) ++not_excited;
  EXPECT_EQ(not_excited, res.simulated_faults - res.excited);
}

TEST(Campaign, HdcuStallStuckHighIsCaughtByWatchdogOrVerdict) {
  // The HDCU's stall output stuck at 1 wedges the pipeline: the in-field
  // observation is a watchdog reset. Verify the campaign classifies at least
  // one fault as watchdog-detected in an HDCU campaign.
  const auto routine = core::make_fwd_test(true);
  exp::Scenario sc{1, {0, 0, 0}, 0, 0, "t"};
  auto tests =
      exp::build_scenario_tests(*routine, WrapperKind::kPlain, sc, 0, true);
  CampaignConfig cc;
  cc.module = Module::kHdcu;
  cc.core_id = 0;
  cc.kind = isa::CoreKind::kA;
  cc.fault_stride = 2;
  Campaign campaign(cc, exp::scenario_factory(std::move(tests), sc, 0));
  const auto res = campaign.run();
  EXPECT_GT(res.detected_watchdog, 0u);
  EXPECT_GT(res.coverage_percent(), 30.0);
}

TEST(Campaign, ModuleNames) {
  EXPECT_STREQ(module_name(Module::kFwd), "forwarding-logic");
  EXPECT_STREQ(module_name(Module::kHdcu), "hdcu");
  EXPECT_STREQ(module_name(Module::kIcu), "icu");
}

TEST(Campaign, CheckpointConfigHashBindsOutcomeRelevantFieldsOnly) {
  // The hash a checkpoint manifest binds to must change with anything that
  // changes outcomes (sampling, graded netlist, routine image) and must NOT
  // change with execution knobs (threads, observability, checkpoint paths) —
  // resuming on a different worker count is legal.
  const netlist::FwdNetlist fwd(isa::CoreKind::kA);
  const auto routine = core::make_fwd_test(false);
  exp::Scenario sc{1, {0, 0, 0}, 0, 0, "hash"};
  auto tests = exp::build_scenario_tests(*routine, WrapperKind::kPlain, sc, 0, false);
  const soc::Soc soc = exp::scenario_factory(std::move(tests), sc, 0)();

  CampaignConfig cfg;
  cfg.module = Module::kFwd;
  cfg.fault_stride = 8;
  const u64 base = checkpoint_config_hash(cfg, fwd.nl(), soc);
  EXPECT_EQ(checkpoint_config_hash(cfg, fwd.nl(), soc), base);  // stable

  CampaignConfig knobs = cfg;
  knobs.threads = 8;
  knobs.progress_every = 1;
  knobs.checkpoint.dir = "elsewhere";
  knobs.checkpoint.resume = true;
  EXPECT_EQ(checkpoint_config_hash(knobs, fwd.nl(), soc), base);

  CampaignConfig stride = cfg;
  stride.fault_stride = 4;
  EXPECT_NE(checkpoint_config_hash(stride, fwd.nl(), soc), base);

  CampaignConfig marker = cfg;
  marker.signature_from_marker = true;
  EXPECT_NE(checkpoint_config_hash(marker, fwd.nl(), soc), base);

  CampaignConfig bound = cfg;
  bound.max_cycles = 1'000;
  EXPECT_NE(checkpoint_config_hash(bound, fwd.nl(), soc), base);

  // A different graded netlist changes the fault list, so it must re-key.
  const netlist::HdcuNetlist hdcu(isa::CoreKind::kA);
  EXPECT_NE(checkpoint_config_hash(cfg, hdcu.nl(), soc), base);

  // A different routine image (same config, same netlist) must re-key too.
  const auto other = core::make_icu_test();
  auto tests2 = exp::build_scenario_tests(*other, WrapperKind::kPlain, sc, 0, false);
  const soc::Soc soc2 = exp::scenario_factory(std::move(tests2), sc, 0)();
  EXPECT_NE(checkpoint_config_hash(cfg, fwd.nl(), soc2), base);
}

TEST(Report, GateClassTotalsMatchCampaign) {
  const auto res = run_icu_campaign(WrapperKind::kPlain, 1, 2, 4096);
  const netlist::IcuNetlist icu(isa::CoreKind::kA);
  const auto rep = make_report(res, icu.nl(), 2);
  u64 faults = 0, detected = 0;
  for (const auto& c : rep.by_gate_class) {
    faults += c.faults;
    detected += c.detected;
    EXPECT_GE(c.faults, c.detected);
  }
  EXPECT_EQ(faults, res.simulated_faults);
  EXPECT_EQ(detected, res.detected);
  const std::string text = render_report(rep, "icu");
  EXPECT_NE(text.find("fault coverage"), std::string::npos);
  EXPECT_NE(text.find("dff"), std::string::npos);  // ICU has flops
}

}  // namespace
}  // namespace detstl::fault
