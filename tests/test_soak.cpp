// SEU soak + mission-mode tests: the rate-based upset plan is a pure function
// of (spec, seed); soak campaigns are byte-identical across worker-thread
// counts and across kill/resume; the differential bisection names a minimal
// culprit (re-simulating one upset fewer is clean, the named prefix
// diverges); and mission mode keeps the STL signature golden with every
// measured per-access bus wait inside the stlint-predicted d_max.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "runtime/mission.h"
#include "runtime/soak.h"

namespace fs = std::filesystem;

namespace detstl::runtime {
namespace {

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("detstl-soak-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::unique_ptr<core::SelfTestRoutine>> g_keep;

std::vector<const core::SelfTestRoutine*> routines(
    std::initializer_list<const char*> names) {
  std::vector<const core::SelfTestRoutine*> out;
  for (const char* n : names) {
    const core::RoutineEntry* e = core::find_routine(n);
    EXPECT_NE(e, nullptr) << n;
    g_keep.push_back(e->make());
    out.push_back(g_keep.back().get());
  }
  return out;
}

/// Small two-core spec that still injects a useful number of upsets.
SoakCampaignSpec small_spec() {
  SoakCampaignSpec spec;
  spec.seed = 0x50AF0001;
  spec.runs = 4;
  spec.threads = 1;
  spec.cores = 2;
  spec.routines = {"alu", "shifter"};
  return spec;
}

TEST(SoakPlan, DeterministicAndSeedSensitive) {
  SoakSpec spec;
  spec.duration = 50'000;
  const SoakPlan a = make_soak_plan(spec, 0x1234, 3);
  const SoakPlan b = make_soak_plan(spec, 0x1234, 3);
  const SoakPlan c = make_soak_plan(spec, 0x1235, 3);
  ASSERT_EQ(a.upsets.size(), b.upsets.size());
  for (std::size_t i = 0; i < a.upsets.size(); ++i) {
    EXPECT_EQ(a.upsets[i].site, b.upsets[i].site);
    EXPECT_EQ(a.upsets[i].core, b.upsets[i].core);
    EXPECT_EQ(a.upsets[i].cycle, b.upsets[i].cycle);
    EXPECT_EQ(a.upsets[i].pick, b.upsets[i].pick);
  }
  // ~0.000135 upsets/cycle over 50k cycles: arrivals are all but certain.
  EXPECT_GT(a.upsets.size(), 0u);
  for (std::size_t i = 1; i < a.upsets.size(); ++i)
    EXPECT_LE(a.upsets[i - 1].cycle, a.upsets[i].cycle);
  bool differs = a.upsets.size() != c.upsets.size();
  for (std::size_t i = 0; !differs && i < a.upsets.size(); ++i)
    differs = a.upsets[i].cycle != c.upsets[i].cycle ||
              a.upsets[i].pick != c.upsets[i].pick;
  EXPECT_TRUE(differs);
}

TEST(SoakPlan, RatesScaleArrivalsPerSite) {
  SoakSpec spec;
  spec.duration = 200'000;
  spec.rates = {0, 0, 0, 0};
  EXPECT_TRUE(make_soak_plan(spec, 0x77, 3).upsets.empty());
  spec.rates = {500, 0, 0, 0};
  const SoakPlan ram_only = make_soak_plan(spec, 0x77, 3);
  EXPECT_GT(ram_only.upsets.size(), 50u);  // E = 100
  for (const SoakUpset& u : ram_only.upsets) EXPECT_EQ(u.site, SoakSite::kRam);
}

TEST(SoakInjector, HookStatsStayOutOfDisturbanceStats) {
  const SchedulePlan plan = plan_schedule(routines({"alu"}), 2);
  SoakSpec sspec;
  sspec.duration = 20'000;
  sspec.rates = {400, 200, 200, 100};
  const SoakPlan splan = make_soak_plan(sspec, 0xBEE5, 2);
  ASSERT_FALSE(splan.upsets.empty());
  SoakInjector inj(splan);
  StlSupervisor sup(plan.soc, plan.schedule, SupervisorConfig{});
  const SupervisorResult r = sup.run(nullptr, &inj);
  EXPECT_GT(inj.stats().total_applied() +
                inj.stats().skipped[0] + inj.stats().skipped[1] +
                inj.stats().skipped[2] + inj.stats().skipped[3],
            0u);
  for (unsigned k = 0; k < kNumDisturbanceKinds; ++k) {
    EXPECT_EQ(r.injections.applied[k], 0u);
    EXPECT_EQ(r.injections.skipped[k], 0u);
  }
  // Every applied upset resolved a concrete landing site and plan index.
  for (const AppliedUpset& a : inj.applied_log())
    EXPECT_LT(a.index, splan.upsets.size());
}

TEST(SoakCampaign, ByteIdenticalAcrossThreadCounts) {
  SoakCampaignSpec spec = small_spec();
  const SoakCampaignResult ref = run_soak_campaign(spec);
  for (unsigned t : {2u, 8u}) {
    SoakCampaignSpec s = spec;
    s.threads = t;
    const SoakCampaignResult res = run_soak_campaign(s);
    EXPECT_EQ(res.outcome_vector(), ref.outcome_vector()) << "threads=" << t;
    EXPECT_EQ(render_soak_report(res), render_soak_report(ref)) << "threads=" << t;
  }
}

TEST(SoakCampaign, KillAndResumeIsByteIdentical) {
  SoakCampaignSpec spec = small_spec();
  spec.threads = 2;
  const SoakCampaignResult straight = run_soak_campaign(spec);

  const fs::path dir = scratch_dir("kill-resume");
  SoakCampaignSpec killed = spec;
  killed.checkpoint.dir = dir.string();
  killed.checkpoint.interval = 1;
  killed.checkpoint.fsync = fault::FsyncPolicy::kNone;
  fault::InterruptToken token;
  token.arm_after(2);
  killed.interrupt = &token;
  const SoakCampaignResult partial = run_soak_campaign(killed);
  EXPECT_TRUE(partial.ckpt.interrupted);

  SoakCampaignSpec resumed = spec;
  resumed.checkpoint.dir = dir.string();
  resumed.checkpoint.fsync = fault::FsyncPolicy::kNone;
  resumed.checkpoint.resume = true;
  const SoakCampaignResult full = run_soak_campaign(resumed);
  EXPECT_FALSE(full.ckpt.interrupted);
  EXPECT_GT(full.ckpt.records_resumed, 0u);
  EXPECT_EQ(full.outcome_vector(), straight.outcome_vector());
  EXPECT_EQ(render_soak_report(full), render_soak_report(straight));
}

TEST(SoakCampaign, ShardRangesMergeToTheStraightResult) {
  SoakCampaignSpec spec = small_spec();
  const SoakCampaignResult straight = run_soak_campaign(spec);

  const fs::path lo_dir = scratch_dir("shard-lo");
  const fs::path hi_dir = scratch_dir("shard-hi");
  for (const auto& [dir, lo, hi] :
       {std::tuple{lo_dir, u64{0}, u64{2}}, std::tuple{hi_dir, u64{2}, u64{4}}}) {
    SoakCampaignSpec shard = spec;
    shard.checkpoint.dir = dir.string();
    shard.checkpoint.interval = 1;
    shard.checkpoint.fsync = fault::FsyncPolicy::kNone;
    shard.unit_begin = lo;
    shard.unit_end = hi;
    run_soak_campaign(shard);
  }
  SoakCampaignSpec merge = spec;
  merge.merge_dirs = {lo_dir.string(), hi_dir.string()};
  const SoakCampaignResult merged = run_soak_campaign(merge);
  EXPECT_EQ(merged.ckpt.records_resumed, 4u);
  EXPECT_EQ(merged.outcome_vector(), straight.outcome_vector());
}

TEST(SoakCampaign, BisectionNamesAMinimalCulprit) {
  // Elevated rates force divergences; every diverged run must be isolated,
  // and the verdict must be *minimal*: replaying the plan truncated to the
  // culprit diverges, truncated one earlier is clean.
  SoakCampaignSpec spec = small_spec();
  spec.seed = 0x50AF0BAD;
  spec.runs = 3;
  spec.soak.rates = {200, 400, 300, 120};

  const SoakCampaignResult res = run_soak_campaign(spec);
  const SchedulePlan plan = plan_schedule(routines({"alu", "shifter"}), spec.cores);

  unsigned diverged = 0;
  for (const SoakRunRecord& rec : res.records) {
    if (rec.isolation.diverged == 0) continue;
    ++diverged;
    ASSERT_EQ(rec.isolation.isolated, 1u);
    EXPECT_GE(rec.isolation.reruns, 1u);

    SoakSpec sspec = spec.soak;
    sspec.duration = 0;  // recompute exactly as the campaign did
    {
      u64 longest = 0;
      for (unsigned c = 0; c < spec.cores; ++c) {
        u64 sum = 0;
        for (const PlannedRoutine& r : plan.schedule[c]) sum += r.cached_calib;
        longest = std::max(longest, sum);
      }
      sspec.duration = 2 * longest + 1'000;
    }
    const SoakPlan splan = make_soak_plan(sspec, rec.seed, spec.cores);
    const u32 culprit = rec.isolation.upset_index;
    ASSERT_LT(culprit, splan.upsets.size());
    EXPECT_EQ(splan.upsets[culprit].site, rec.isolation.site);
    EXPECT_EQ(splan.upsets[culprit].cycle, rec.isolation.cycle);

    const auto replay = [&](std::size_t limit) {
      SoakInjector inj(splan, limit);
      StlSupervisor sup(plan.soc, plan.schedule, spec.supervisor);
      return soak_run_diverged(sup.run(nullptr, &inj));
    };
    EXPECT_TRUE(replay(culprit + 1)) << "culprit prefix must diverge";
    EXPECT_FALSE(replay(culprit)) << "prefix without the culprit must be clean";
  }
  EXPECT_GT(diverged, 0u) << "rates chosen to force at least one divergence";
}

TEST(SoakRecord, SerializationRoundTripsAndRejectsGarbage) {
  SoakCampaignSpec spec = small_spec();
  spec.runs = 1;
  const SoakCampaignResult res = run_soak_campaign(spec);
  ASSERT_EQ(res.records.size(), 1u);
  const SoakRunRecord& rec = res.records[0];

  const std::vector<u8> bytes = serialize_soak_record(rec);
  SoakRunRecord back;
  ASSERT_TRUE(deserialize_soak_record(bytes, back));
  EXPECT_EQ(serialize_soak_record(back), bytes);
  EXPECT_EQ(back.seed, rec.seed);
  EXPECT_EQ(back.isolation.diverged, rec.isolation.diverged);
  EXPECT_EQ(back.isolation.upset_index, rec.isolation.upset_index);
  for (unsigned s = 0; s < kNumSoakSites; ++s)
    EXPECT_EQ(back.stats.applied[s], rec.stats.applied[s]);

  std::vector<u8> truncated(bytes.begin(), bytes.end() - 1);
  EXPECT_FALSE(deserialize_soak_record(truncated, back));
  std::vector<u8> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(deserialize_soak_record(padded, back));
  EXPECT_FALSE(deserialize_soak_record({}, back));
}

TEST(SoakCampaign, ConfigHashCoversSoakKnobsButNotThreads) {
  SoakCampaignSpec spec = small_spec();
  const SchedulePlan plan = plan_schedule(routines({"alu", "shifter"}), spec.cores);
  const u64 base = soak_checkpoint_config_hash(spec, plan);

  SoakCampaignSpec t = spec;
  t.threads = 7;
  t.unit_begin = 1;
  t.unit_end = 3;
  EXPECT_EQ(soak_checkpoint_config_hash(t, plan), base);

  SoakCampaignSpec r = spec;
  r.soak.rates.l1i += 1;
  EXPECT_NE(soak_checkpoint_config_hash(r, plan), base);
  SoakCampaignSpec iso = spec;
  iso.isolate = false;
  EXPECT_NE(soak_checkpoint_config_hash(iso, plan), base);
}

TEST(Mission, DeterministicGoldenSignaturesWithinBound) {
  MissionSpec spec;
  spec.seed = 0xA1151234;
  spec.slices = 6;
  spec.cores = 3;
  spec.routines = {"alu", "branch"};
  const MissionResult a = run_mission(spec);
  const MissionResult b = run_mission(spec);
  EXPECT_EQ(a.outcome_vector(), b.outcome_vector());
  EXPECT_EQ(a.digest(), b.digest());

  // The paper's two in-field claims, on simulated traffic.
  EXPECT_EQ(a.divergences(), 0u);
  EXPECT_EQ(a.bound_violations(), 0u);
  EXPECT_LE(a.worst_wait(), a.bound.d_max);
  EXPECT_GT(a.worst_wait(), 0u);  // the mission fleet really contended
  ASSERT_EQ(a.records.size(), 6u);
  for (const MissionSliceRecord& rec : a.records) {
    EXPECT_EQ(rec.sig_ok, 1u);
    EXPECT_EQ(rec.timed_out, 0u);
    EXPECT_GT(rec.mission_grants, 0u);
  }

  MissionSpec other = spec;
  other.seed = 0xA1151235;
  EXPECT_NE(run_mission(other).digest(), a.digest());
}

}  // namespace
}  // namespace detstl::runtime
