// Parallel campaign executor: work-queue dispensing invariants (every index
// exactly once, under contention too) and the determinism-under-threading
// contract — the same CampaignConfig must produce a byte-identical
// CampaignResult for every thread count (docs/fault_simulation.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/routines.h"
#include "exp/experiments.h"
#include "fault/work_queue.h"

namespace detstl::fault {
namespace {

using core::WrapperKind;

TEST(WorkQueue, DispensesEveryIndexExactlyOnce) {
  WorkQueue q(100, 7);
  std::vector<unsigned> seen(100, 0);
  std::size_t chunks = 0;
  while (const auto c = q.next()) {
    ++chunks;
    EXPECT_LT(c->begin, c->end);
    EXPECT_LE(c->end, 100u);
    for (std::size_t i = c->begin; i < c->end; ++i) ++seen[i];
  }
  EXPECT_EQ(chunks, (100 + 6) / 7u);
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], 1u) << "index " << i << " dispensed " << seen[i] << " times";
  // Exhausted queues stay exhausted.
  EXPECT_FALSE(q.next().has_value());
  EXPECT_FALSE(q.next().has_value());
}

TEST(WorkQueue, EmptyRangeAndChunkPromotion) {
  WorkQueue empty(0, 16);
  EXPECT_FALSE(empty.next().has_value());
  // A zero chunk size must not hand out empty chunks forever.
  WorkQueue q(3, 0);
  EXPECT_EQ(q.chunk_size(), 1u);
  std::size_t n = 0;
  while (q.next()) ++n;
  EXPECT_EQ(n, 3u);
}

TEST(WorkQueue, FinalChunkIsTruncated) {
  WorkQueue q(10, 4);
  const auto a = q.next(), b = q.next(), c = q.next();
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->size(), 4u);
  EXPECT_EQ(b->size(), 4u);
  EXPECT_EQ(c->size(), 2u);  // 8..10
  EXPECT_FALSE(q.next().has_value());
}

TEST(WorkQueue, ExactCoverageUnderContention) {
  constexpr std::size_t kTotal = 100'000;
  constexpr unsigned kThreads = 8;
  WorkQueue q(kTotal, 3);
  std::vector<std::vector<std::size_t>> claimed(kThreads);
  std::vector<std::thread> pool;
  for (unsigned w = 0; w < kThreads; ++w) {
    pool.emplace_back([&q, &claimed, w] {
      while (const auto c = q.next())
        for (std::size_t i = c->begin; i < c->end; ++i) claimed[w].push_back(i);
    });
  }
  for (auto& t : pool) t.join();

  std::vector<std::size_t> all;
  for (const auto& v : claimed) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), kTotal) << "indices lost or dispensed twice";
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < kTotal; ++i)
    ASSERT_EQ(all[i], i) << "index " << i << " missing or duplicated";
}

// ---------------------------------------------------------------------------
// Determinism under threading
// ---------------------------------------------------------------------------

CampaignResult run_fwd_campaign(unsigned threads) {
  const auto routine = core::make_fwd_test(/*with_perf_counters=*/false);
  exp::Scenario sc{1, {0, 0, 0}, 0, 0, "det"};
  auto tests = exp::build_scenario_tests(*routine, WrapperKind::kPlain, sc, 0,
                                         /*use_pcs=*/false);
  CampaignConfig cc;
  cc.module = Module::kFwd;
  cc.core_id = 0;
  cc.kind = isa::CoreKind::kA;
  cc.fault_stride = 8;  // small campaign; the contract holds for any stride
  cc.threads = threads;
  Campaign campaign(cc, exp::scenario_factory(std::move(tests), sc, 0));
  return campaign.run();
}

void expect_identical(const CampaignResult& a, const CampaignResult& b,
                      const char* what) {
  EXPECT_EQ(a.total_faults, b.total_faults) << what;
  EXPECT_EQ(a.simulated_faults, b.simulated_faults) << what;
  EXPECT_EQ(a.excited, b.excited) << what;
  EXPECT_EQ(a.detected, b.detected) << what;
  EXPECT_EQ(a.detected_signature, b.detected_signature) << what;
  EXPECT_EQ(a.detected_verdict, b.detected_verdict) << what;
  EXPECT_EQ(a.detected_watchdog, b.detected_watchdog) << what;
  EXPECT_EQ(a.good_cycles, b.good_cycles) << what;
  EXPECT_EQ(a.good_verdict.status, b.good_verdict.status) << what;
  EXPECT_EQ(a.good_verdict.signature, b.good_verdict.signature) << what;
  EXPECT_EQ(a.coverage_percent(), b.coverage_percent()) << what;
  EXPECT_EQ(a.coverage_percent_of_total(), b.coverage_percent_of_total()) << what;
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << what;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i)
    ASSERT_EQ(a.outcomes[i], b.outcomes[i])
        << what << ": outcome of fault " << i << " differs";
}

TEST(ParallelCampaign, ResultIdenticalForOneTwoAndEightThreads) {
  const auto serial = run_fwd_campaign(1);
  EXPECT_GT(serial.simulated_faults, 100u);  // non-trivial campaign
  EXPECT_GT(serial.detected, 0u);

  const auto two = run_fwd_campaign(2);
  const auto eight = run_fwd_campaign(8);
  expect_identical(serial, two, "threads=1 vs threads=2");
  expect_identical(serial, eight, "threads=1 vs threads=8");
}

TEST(ParallelCampaign, AutoThreadCountMatchesSerial) {
  // threads = 0 resolves to hardware concurrency — still the same result.
  const auto serial = run_fwd_campaign(1);
  const auto auto_threads = run_fwd_campaign(0);
  expect_identical(serial, auto_threads, "threads=1 vs threads=0 (auto)");
}

TEST(ParallelCampaign, ProgressCallbackObservesAllPhasesWithoutChangingResult) {
  const auto routine = core::make_icu_test();
  exp::Scenario sc{1, {0, 0, 0}, 0, 0, "prog"};
  CampaignConfig cc;
  cc.module = Module::kIcu;
  cc.core_id = 0;
  cc.kind = isa::CoreKind::kA;
  cc.fault_stride = 2;
  cc.threads = 2;
  cc.progress_every = 1;

  std::vector<CampaignPhase> phases;
  u64 last_detection_done = 0, detection_total = 0;
  cc.progress = [&](const CampaignProgress& p) {
    if (phases.empty() || phases.back() != p.phase) phases.push_back(p.phase);
    EXPECT_LE(p.done, p.total == 0 ? p.done : p.total);
    if (p.phase == CampaignPhase::kDetection) {
      EXPECT_GE(p.done, last_detection_done);  // monotone within the phase
      last_detection_done = p.done;
      detection_total = p.total;
    }
  };
  auto tests = exp::build_scenario_tests(*routine, WrapperKind::kPlain, sc, 0, false);
  Campaign with_progress(cc, exp::scenario_factory(tests, sc, 0));
  const auto res = with_progress.run();

  // All three phases reported, detection driven to completion.
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0], CampaignPhase::kGoodRun);
  EXPECT_EQ(phases[1], CampaignPhase::kScreening);
  EXPECT_EQ(phases[2], CampaignPhase::kDetection);
  EXPECT_EQ(last_detection_done, detection_total);
  EXPECT_EQ(detection_total, res.simulated_faults);

  // The callback is observational: same result without it.
  cc.progress = nullptr;
  Campaign without_progress(cc, exp::scenario_factory(std::move(tests), sc, 0));
  expect_identical(res, without_progress.run(), "progress vs no progress");
}

}  // namespace
}  // namespace detstl::fault
