// Textual assembler: syntax coverage, error reporting, equivalence with the
// builder API, and an executable end-to-end program.

#include <gtest/gtest.h>

#include "isa/asmparser.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "testutil.h"

namespace detstl::isa {
namespace {

u32 word_at(const Program& p, u32 addr) {
  for (const auto& seg : p.segments()) {
    if (addr >= seg.base && addr + 4 <= seg.end()) {
      u32 v = 0;
      for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<u32>(seg.bytes[addr - seg.base + i]) << (8 * i);
      return v;
    }
  }
  ADD_FAILURE() << "address not in program";
  return 0;
}

TEST(AsmParser, MatchesBuilderOutput) {
  const char* src = R"(
    ; a small function
    .org 0x10002000
    main:
      li    r10, 0x20001000
      addi  r1, r0, 5
      add   r2, r1, r1
      sw    r2, 4(r10)
      lw    r3, 4(r10)
      beq   r3, r2, ok
      nop
    ok:
      jal   r31, leaf
      halt
    leaf:
      slli  r4, r1, 3
      ret
    table:
      .word 0xcafef00d
      .word main
  )";
  const Program parsed = assemble_text(src);

  Assembler a(0x10002000);
  a.label("main");
  a.li(R10, 0x20001000);
  a.addi(R1, R0, 5);
  a.add(R2, R1, R1);
  a.sw(R2, R10, 4);
  a.lw(R3, R10, 4);
  a.beq(R3, R2, "ok");
  a.nop();
  a.label("ok");
  a.jal(R31, "leaf");
  a.halt();
  a.label("leaf");
  a.slli(R4, R1, 3);
  a.ret();
  a.label("table");
  a.word(0xcafef00d);
  a.word_label("main");
  const Program built = a.assemble();

  ASSERT_EQ(parsed.segments().size(), built.segments().size());
  for (std::size_t i = 0; i < parsed.segments().size(); ++i) {
    EXPECT_EQ(parsed.segments()[i].base, built.segments()[i].base);
    EXPECT_EQ(parsed.segments()[i].bytes, built.segments()[i].bytes);
  }
}

TEST(AsmParser, ParsedProgramExecutes) {
  const char* src = R"(
    .org 0x10002000
    .entry main
    main:
      addi r1, r0, 0
      addi r2, r0, 10
    loop:
      add  r1, r1, r2
      addi r2, r2, -1
      bne  r2, r0, loop
      halt
  )";
  auto s = test::run_single_core(assemble_text(src));
  EXPECT_TRUE(s.core(0).halted());
  EXPECT_EQ(s.core(0).reg(1), 55u);  // 10+9+...+1
}

TEST(AsmParser, CsrAndSystemOps) {
  const char* src = R"(
    .org 0x10002000
      csrr r4, 0x030     ; core id
      csrw 0x021, r0     ; cache cfg
      eret
      halt
  )";
  const Program p = assemble_text(src);
  const Instr csrr = decode(word_at(p, 0x10002000));
  EXPECT_EQ(csrr.op, Op::kCsrr);
  EXPECT_EQ(csrr.csr, 0x030);
  EXPECT_EQ(decode(word_at(p, 0x10002008)).op, Op::kEret);
}

TEST(AsmParser, AmoAndNegativeOffsets) {
  const char* src = R"(
    .org 0x10002000
      amoadd r5, (r10), r2
      sw     r5, -8(r10)
      lb     r6, -1(r10)
  )";
  const Program p = assemble_text(src);
  const Instr amo = decode(word_at(p, 0x10002000));
  EXPECT_EQ(amo.op, Op::kAmoAdd);
  EXPECT_EQ(amo.rd, 5);
  EXPECT_EQ(amo.rs1, 10);
  EXPECT_EQ(amo.rs2, 2);
  const Instr sw = decode(word_at(p, 0x10002004));
  EXPECT_EQ(sw.imm, -8);
}

TEST(AsmParser, AlignAndSpace) {
  const char* src = R"(
    .org 0x1000
      nop
    .align 16
    here:
      .space 8
    after:
      .word 1
  )";
  const Program p = assemble_text(src);
  EXPECT_EQ(p.symbol("here"), 0x1010u);
  EXPECT_EQ(p.symbol("after"), 0x1018u);
}

TEST(AsmParser, ErrorsCarryLineNumbers) {
  try {
    assemble_text("  nop\n  bogus r1, r2\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(AsmParser, BadRegisterRejected) {
  EXPECT_THROW(assemble_text("add r1, r2, r32\n"), ParseError);
  EXPECT_THROW(assemble_text("add r1, r2, x3\n"), ParseError);
}

TEST(AsmParser, WrongOperandCountRejected) {
  EXPECT_THROW(assemble_text("add r1, r2\n"), ParseError);
  EXPECT_THROW(assemble_text("lw r1, r2, 4\n"), ParseError);
}

TEST(AsmParser, UndefinedLabelRejected) {
  EXPECT_THROW(assemble_text("beq r0, r0, nowhere\n"), ParseError);
}

TEST(AsmParser, UnknownDirectiveRejected) {
  EXPECT_THROW(assemble_text(".bogus 1\n"), ParseError);
}

TEST(AsmParser, RoundTripThroughDisassembler) {
  // Disassemble a builder program and re-assemble the text: encodings match.
  Assembler a(0x2000);
  a.add(R3, R1, R2);
  a.addi(R4, R3, -100);
  a.lw(R5, R4, 12);
  a.sw(R5, R4, 16);
  a.mul(R6, R5, R5);
  const Program orig = a.assemble();

  std::string text = ".org 0x2000\n";
  for (u32 addr = 0x2000; addr < 0x2000 + orig.size_bytes(); addr += 4)
    text += disasm_word(word_at(orig, addr)) + "\n";
  const Program round = assemble_text(text);
  ASSERT_EQ(round.segments().size(), 1u);
  EXPECT_EQ(round.segments()[0].bytes, orig.segments()[0].bytes);
}

}  // namespace
}  // namespace detstl::isa
