// SoC-level properties: value-semantic checkpointing (the fault engine's
// foundation), start staggers, activity isolation, loaders and debug access.

#include <gtest/gtest.h>

#include "core/routines.h"
#include "core/stl.h"
#include "testutil.h"

namespace detstl {
namespace {

using namespace isa;
using isa::Assembler;

isa::Program counting_program(u32 base, u32 sram_slot) {
  Assembler a(base);
  a.li(R10, sram_slot);
  a.addi(R1, R0, 0);
  a.li(R2, 500);
  a.label("loop");
  a.addi(R1, R1, 3);
  a.sw(R1, R10, 0);
  a.addi(R2, R2, -1);
  a.bne(R2, R0, "loop");
  a.halt();
  return a.assemble();
}

// ----------------------------------------------------------------------------
// Checkpoint copy semantics
// ----------------------------------------------------------------------------

TEST(SocCheckpoint, CopyIsBitExactContinuation) {
  // Run N cycles, snapshot, run both the original and the copy for M more
  // cycles: every piece of architectural state must match. This is the
  // invariant the fault campaign's checkpoint restore rests on.
  soc::Soc s;
  for (unsigned c = 0; c < 3; ++c) {
    const auto p = counting_program(mem::kFlashBase + 0x2000 + c * 0x10000,
                                    mem::kSramBase + 0x6000 + c * 64);
    s.load_program(p);
    s.set_boot(c, p.entry());
  }
  s.reset();
  for (int i = 0; i < 700; ++i) s.tick();

  soc::Soc copy = s;
  for (int i = 0; i < 900; ++i) {
    s.tick();
    copy.tick();
  }
  EXPECT_EQ(copy.now(), s.now());
  for (unsigned c = 0; c < 3; ++c) {
    for (unsigned r = 0; r < isa::kNumRegs; ++r)
      ASSERT_EQ(copy.core(c).reg(r), s.core(c).reg(r)) << "core " << c << " r" << r;
    EXPECT_EQ(copy.core(c).perf().cycles, s.core(c).perf().cycles);
    EXPECT_EQ(copy.core(c).perf().instret, s.core(c).perf().instret);
    EXPECT_EQ(copy.core(c).perf().if_stalls, s.core(c).perf().if_stalls);
    EXPECT_EQ(copy.core(c).halted(), s.core(c).halted());
  }
  for (u32 off = 0; off < 192; off += 4)
    ASSERT_EQ(copy.debug_read32(mem::kSramBase + 0x6000 + off),
              s.debug_read32(mem::kSramBase + 0x6000 + off));
}

TEST(SocCheckpoint, CopyDivergesIndependently) {
  soc::Soc s;
  const auto p = counting_program(mem::kFlashBase + 0x2000, mem::kSramBase + 0x6000);
  s.load_program(p);
  s.set_boot(0, p.entry());
  s.reset();
  for (int i = 0; i < 300; ++i) s.tick();
  soc::Soc copy = s;
  for (int i = 0; i < 400; ++i) s.tick();  // only the original advances
  EXPECT_GT(s.core(0).perf().cycles, copy.core(0).perf().cycles);
  // The copy continues from exactly where it was snapshot.
  const u64 before = copy.core(0).perf().cycles;
  copy.tick();
  EXPECT_EQ(copy.core(0).perf().cycles, before + 1);
}

// ----------------------------------------------------------------------------
// Determinism across identical runs
// ----------------------------------------------------------------------------

TEST(SocDeterminism, IdenticalRunsProduceIdenticalCycleCounts) {
  auto once = [] {
    soc::Soc s(soc::SocConfig{.start_delay = {0, 4, 9}});
    for (unsigned c = 0; c < 3; ++c) {
      const auto p = counting_program(mem::kFlashBase + 0x2000 + c * 0x10000,
                                      mem::kSramBase + 0x6000 + c * 64);
      s.load_program(p);
      s.set_boot(c, p.entry());
    }
    s.reset();
    s.run(1'000'000);
    return std::array<u64, 3>{s.core(0).perf().cycles, s.core(1).perf().cycles,
                              s.core(2).perf().cycles};
  };
  EXPECT_EQ(once(), once());
}

TEST(SocDeterminism, StaggerChangesTimingNotResults) {
  auto run_with = [](std::array<u32, 3> stagger) {
    soc::Soc s(soc::SocConfig{.start_delay = stagger});
    for (unsigned c = 0; c < 3; ++c) {
      const auto p = counting_program(mem::kFlashBase + 0x2000 + c * 0x10000,
                                      mem::kSramBase + 0x6000 + c * 64);
      s.load_program(p);
      s.set_boot(c, p.entry());
    }
    s.reset();
    s.run(1'000'000);
    return s;
  };
  auto s1 = run_with({0, 0, 0});
  auto s2 = run_with({3, 11, 6});
  for (unsigned c = 0; c < 3; ++c) {
    // Architectural results identical...
    EXPECT_EQ(s1.core(c).reg(1), s2.core(c).reg(1));
    EXPECT_EQ(s1.debug_read32(mem::kSramBase + 0x6000 + c * 64),
              s2.debug_read32(mem::kSramBase + 0x6000 + c * 64));
  }
  // ...but the contention timing differs for at least one core.
  bool timing_differs = false;
  for (unsigned c = 0; c < 3; ++c)
    timing_differs |= s1.core(c).perf().if_stalls != s2.core(c).perf().if_stalls;
  EXPECT_TRUE(timing_differs);
}

// ----------------------------------------------------------------------------
// Activity isolation
// ----------------------------------------------------------------------------

TEST(SocIsolation, InactiveCoresGenerateNoTraffic) {
  auto cycles_with = [](unsigned actives) {
    soc::Soc s;
    for (unsigned c = 0; c < actives; ++c) {
      const auto p = counting_program(mem::kFlashBase + 0x2000 + c * 0x10000,
                                      mem::kSramBase + 0x6000 + c * 64);
      s.load_program(p);
      s.set_boot(c, p.entry());
    }
    s.reset();
    s.run(1'000'000);
    return s.core(0).perf().cycles;
  };
  const u64 solo = cycles_with(1);
  const u64 trio = cycles_with(3);
  EXPECT_GT(trio, solo);  // contention slows core 0 down
}

TEST(SocIsolation, PrivateTcmsArePerCore) {
  soc::Soc s;
  for (unsigned c = 0; c < 2; ++c) {
    Assembler a(mem::kFlashBase + 0x2000 + c * 0x10000);
    a.li(R1, mem::kDtcmBase + 0x20);
    a.li(R2, 0x1000 + c);
    a.sw(R2, R1, 0);
    a.halt();
    const auto p = a.assemble();
    s.load_program(p);
    s.set_boot(c, p.entry());
  }
  s.reset();
  s.run(100000);
  EXPECT_EQ(s.debug_read32(0, mem::kDtcmBase + 0x20), 0x1000u);
  EXPECT_EQ(s.debug_read32(1, mem::kDtcmBase + 0x20), 0x1001u);
}

// ----------------------------------------------------------------------------
// Loader + debug access
// ----------------------------------------------------------------------------

TEST(SocLoader, SegmentsReachFlashAndSram) {
  Assembler a(mem::kFlashBase + 0x3000);
  a.word(0x11223344);
  a.org(mem::kSramBase + 0x500);
  a.word(0x55667788);
  soc::Soc s;
  s.load_program(a.assemble());
  EXPECT_EQ(s.debug_read32(mem::kFlashBase + 0x3000), 0x11223344u);
  EXPECT_EQ(s.debug_read32(mem::kSramBase + 0x500), 0x55667788u);
}

TEST(SocLoader, DebugReadSeesDirtyCacheLines) {
  // A store sitting dirty in a write-back D$ must be visible to the debug
  // view (the harness reads verdicts this way when caches stay enabled).
  Assembler a(mem::kFlashBase);
  a.li(R1, isa::kCacheOpInvD);
  a.csrw(Csr::kCacheOp, R1);
  a.li(R1, isa::kCacheCfgDEn | isa::kCacheCfgWriteAllocate);
  a.csrw(Csr::kCacheCfg, R1);
  a.li(R10, mem::kSramBase + 0x5000);
  a.li(R2, 0xfeedface);
  a.sw(R2, R10, 0);
  a.halt();
  auto s = test::run_single_core(a.assemble());
  EXPECT_EQ(s.sram().read32(mem::kSramBase + 0x5000), 0u);  // still dirty
  EXPECT_EQ(s.debug_read32(mem::kSramBase + 0x5000), 0xfeedfaceu);
}

}  // namespace
}  // namespace detstl
