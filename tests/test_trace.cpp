// detscope observability regression tests: phase recognition, byte-exact
// stream serialisation, Chrome-trace JSON well-formedness, per-phase metrics
// attribution, the sink's checkpoint contract, and the two determinism
// audits (solo-vs-contended execution loop, campaign thread-count sweep).

#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/routines.h"
#include "core/stl.h"
#include "core/wrapper.h"
#include "cpu/trace.h"
#include "exp/experiments.h"
#include "fault/campaign.h"
#include "soc/soc.h"
#include "trace/audit.h"
#include "trace/capture.h"
#include "trace/chrome_trace.h"
#include "trace/event.h"
#include "trace/metrics.h"
#include "trace/trace_io.h"
#include "trace/xval.h"

namespace detstl {
namespace {

// -----------------------------------------------------------------------------
// PhaseTracker
// -----------------------------------------------------------------------------

TEST(PhaseTracker, RecognisesCacheWrapperSequence) {
  trace::PhaseTracker t;
  EXPECT_FALSE(t.active());
  EXPECT_FALSE(t.observe_loop_counter(2));  // not inside a wrapper yet
  EXPECT_FALSE(t.observe_cache_op(0x4));    // enable bits only, no invalidate

  EXPECT_TRUE(t.observe_cache_op(0x3));
  EXPECT_TRUE(t.active());
  EXPECT_EQ(t.current(), trace::Phase::kInvalidate);
  EXPECT_FALSE(t.observe_cache_op(0x1));  // repeated invalidate: same phase

  EXPECT_TRUE(t.observe_loop_counter(2));
  EXPECT_EQ(t.current(), trace::Phase::kLoadingLoop);
  EXPECT_FALSE(t.observe_loop_counter(5));  // counter churn inside the loop

  EXPECT_TRUE(t.observe_loop_counter(1));
  EXPECT_EQ(t.current(), trace::Phase::kExecutionLoop);

  EXPECT_TRUE(t.observe_loop_counter(0));
  EXPECT_EQ(t.current(), trace::Phase::kSignatureCheck);
  EXPECT_FALSE(t.observe_loop_counter(0));

  t.reset();
  EXPECT_FALSE(t.active());
  // A plain/TCM wrapper never invalidates, so r30 writes must stay silent.
  EXPECT_FALSE(t.observe_loop_counter(1));
}

TEST(PhaseTracker, CacheCfgDisableEndsExecutionLoop) {
  trace::PhaseTracker t;
  EXPECT_FALSE(t.observe_cache_cfg(0));  // outside a wrapper: ignored
  EXPECT_TRUE(t.observe_cache_op(0x3));
  // Ablation builds with one loop iteration seed the counter straight to 1.
  EXPECT_TRUE(t.observe_loop_counter(1));
  EXPECT_EQ(t.current(), trace::Phase::kExecutionLoop);
  EXPECT_TRUE(t.observe_cache_cfg(0));
  EXPECT_EQ(t.current(), trace::Phase::kSignatureCheck);
  EXPECT_FALSE(t.observe_cache_cfg(0));
}

// -----------------------------------------------------------------------------
// Stream serialisation + capture
// -----------------------------------------------------------------------------

TEST(StreamSerialize, FieldWiseLittleEndian) {
  trace::Event e;
  e.cycle = 0x1122334455667788ull;
  e.kind = trace::EventKind::kCacheMiss;
  e.core = 2;
  e.unit = 1;
  e.flags = 0xa5;
  e.addr = 0xdeadbeef;
  e.a = 0x01020304;
  e.b = 0x0a0b0c0d;

  std::string s;
  trace::append_bytes(e, s);
  ASSERT_EQ(s.size(), 24u);
  const auto at = [&s](std::size_t i) {
    return static_cast<unsigned>(static_cast<unsigned char>(s[i]));
  };
  EXPECT_EQ(at(0), 0x88u);  // cycle, LSB first
  EXPECT_EQ(at(7), 0x11u);
  EXPECT_EQ(at(8), static_cast<unsigned>(trace::EventKind::kCacheMiss));
  EXPECT_EQ(at(9), 2u);     // core
  EXPECT_EQ(at(10), 1u);    // unit
  EXPECT_EQ(at(11), 0xa5u); // flags
  EXPECT_EQ(at(12), 0xefu); // addr, LSB first
  EXPECT_EQ(at(15), 0xdeu);
  EXPECT_EQ(at(16), 0x04u); // a
  EXPECT_EQ(at(20), 0x0du); // b
  EXPECT_EQ(at(23), 0x0au);

  EXPECT_EQ(trace::serialize({e, e}), s + s);
}

TEST(StreamCapture, FiltersByCore) {
  trace::StreamCapture all;
  trace::StreamCapture core1(1);
  for (const int c : {0, 1, 2, 1}) {
    trace::Event e;
    e.core = static_cast<u8>(c);
    all.on_event(e);
    core1.on_event(e);
  }
  EXPECT_EQ(all.events().size(), 4u);
  EXPECT_EQ(core1.events().size(), 2u);
  EXPECT_EQ(core1.events()[0].core, 1u);
  core1.clear();
  EXPECT_TRUE(core1.events().empty());
}

// -----------------------------------------------------------------------------
// TraceRecorder windowed rendering
// -----------------------------------------------------------------------------

TEST(TraceRecorder, RenderWindowSelectsCycles) {
  cpu::TraceRecorder rec;
  EXPECT_EQ(rec.render(), "(empty trace)\n");

  const u64 a = rec.on_issue(2, 0x100, 0, "add r1, r2, r3");
  rec.on_stage(a, cpu::Stage::kEx, 3);
  rec.on_stage(a, cpu::Stage::kMem, 4);
  rec.on_stage(a, cpu::Stage::kWb, 5);
  const u64 b = rec.on_issue(10, 0x104, 0, "sub r4, r5, r6");
  rec.on_stage(b, cpu::Stage::kEx, 11);
  rec.on_stage(b, cpu::Stage::kMem, 12);
  rec.on_stage(b, cpu::Stage::kWb, 13);

  const std::string full = rec.render();
  EXPECT_NE(full.find("00000100"), std::string::npos);
  EXPECT_NE(full.find("00000104"), std::string::npos);
  EXPECT_NE(full.find("add r1, r2, r3"), std::string::npos);

  // Early window: the second instruction issues past the window end.
  const std::string early = rec.render(0, 5);
  EXPECT_NE(early.find("00000100"), std::string::npos);
  EXPECT_EQ(early.find("00000104"), std::string::npos);

  const std::string late = rec.render(10, 13);
  EXPECT_NE(late.find("00000104"), std::string::npos);

  EXPECT_EQ(rec.render(20, 30), "(empty window)\n");
  EXPECT_EQ(rec.render(8, 6), "(empty window)\n");
}

// -----------------------------------------------------------------------------
// Traced quickstart scenario (shared by the metrics and JSON tests)
// -----------------------------------------------------------------------------

bool run_cached(unsigned cores, trace::EventSink* sink) {
  const auto routine = core::make_alu_test();
  std::vector<core::BuiltTest> tests;
  for (unsigned c = 0; c < cores; ++c) {
    core::BuildEnv env;
    env.core_id = c;
    env.kind = static_cast<isa::CoreKind>(c);
    env.code_base = mem::kFlashBase + 0x2000 + c * 0x40000;
    env.data_base = core::default_data_base(c);
    tests.push_back(
        core::build_wrapped(*routine, core::WrapperKind::kCacheBased, env));
  }
  soc::SocConfig cfg;
  cfg.start_delay = {0, 3, 7};
  soc::Soc soc(cfg);
  for (const auto& t : tests) {
    soc.load_program(t.prog);
    soc.set_boot(t.env.core_id, t.prog.entry());
  }
  for (unsigned c = cores; c < 3; ++c) soc.set_active(c, false);
  soc.set_trace_sink(sink);
  soc.reset();
  if (soc.run(10'000'000).timed_out) return false;
  bool ok = true;
  for (unsigned c = 0; c < cores; ++c) {
    const auto v = core::read_verdict(soc, soc::mailbox_addr(c));
    ok &= v.status == soc::kStatusPass && v.signature == tests[c].golden;
  }
  return ok;
}

TEST(Metrics, ExecutionLoopIsBusSilent) {
  trace::MetricsRegistry metrics;
  ASSERT_TRUE(run_cached(1, &metrics));

  const auto& exec = metrics.counters(0, trace::Phase::kExecutionLoop);
  EXPECT_GT(exec.events, 0u);
  EXPECT_EQ(exec.bus_submits, 0u);
  EXPECT_EQ(exec.icache_misses, 0u);
  EXPECT_EQ(exec.dcache_misses, 0u);
  EXPECT_EQ(exec.dcache_writebacks, 0u);

  // The loading loop is where the lines get pulled in.
  const auto& loading = metrics.counters(0, trace::Phase::kLoadingLoop);
  EXPECT_GT(loading.events, 0u);

  EXPECT_TRUE(metrics.violations().empty());
  EXPECT_GT(metrics.total_events(), 0u);
  EXPECT_EQ(metrics.campaign_events(), 0u);

  // render() must mention every phase bucket.
  const std::string r = metrics.render();
  EXPECT_NE(r.find(trace::phase_name(trace::Phase::kExecutionLoop)),
            std::string::npos);
}

// -----------------------------------------------------------------------------
// Chrome-trace JSON: parse it back, one monotone timeline per track
// -----------------------------------------------------------------------------

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  const Json* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

// Minimal strict JSON parser — enough to re-read what ChromeTraceWriter
// emits and fail loudly on malformed output.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(Json& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value(Json& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = Json::Kind::kString; return string(out.string);
      case 't': out.kind = Json::Kind::kBool; out.boolean = true; return literal("true");
      case 'f': out.kind = Json::Kind::kBool; out.boolean = false; return literal("false");
      case 'n': out.kind = Json::Kind::kNull; return literal("null");
      default: return number(out);
    }
  }

  bool object(Json& out) {
    out.kind = Json::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !string(key)) return false;
      skip_ws();
      if (!peek(':')) return false;
      skip_ws();
      Json v;
      if (!value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (peek('}')) return true;
      if (!peek(',')) return false;
    }
  }

  bool array(Json& out) {
    out.kind = Json::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    while (true) {
      skip_ws();
      Json v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (peek(']')) return true;
      if (!peek(',')) return false;
    }
  }

  bool string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) return false;
            pos_ += 4;
            c = '?';  // code point itself is irrelevant to these tests
            break;
          default: return false;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number(Json& out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return false;
    out.kind = Json::Kind::kNumber;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(ChromeTrace, JsonParsesBackAndTimelinesAreMonotone) {
  trace::ChromeTraceWriter writer;
  ASSERT_TRUE(run_cached(2, &writer));
  ASSERT_GT(writer.size(), 0u);

  std::ostringstream os;
  writer.write(os);
  const std::string text = os.str();

  Json root;
  ASSERT_TRUE(JsonParser(text).parse(root)) << "trace JSON failed to parse";
  ASSERT_EQ(root.kind, Json::Kind::kObject);
  const Json* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, Json::Kind::kArray);
  ASSERT_FALSE(events->array.empty());

  std::map<int, double> last_ts;
  std::set<int> named_tracks;
  for (const Json& ev : events->array) {
    ASSERT_EQ(ev.kind, Json::Kind::kObject);
    const Json* ph = ev.find("ph");
    const Json* tid = ev.find("tid");
    const Json* pid = ev.find("pid");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(tid, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_EQ(ph->kind, Json::Kind::kString);
    const int track = static_cast<int>(tid->number);
    if (ph->string == "M") {
      named_tracks.insert(track);
      continue;
    }
    const Json* ts = ev.find("ts");
    ASSERT_NE(ts, nullptr);
    ASSERT_EQ(ts->kind, Json::Kind::kNumber);
    const auto it = last_ts.find(track);
    if (it != last_ts.end())
      EXPECT_GE(ts->number, it->second) << "non-monotone ts on track " << track;
    last_ts[track] = ts->number;
  }
  // Both traced cores produced events, and every track that carries events
  // announced its name via thread_name metadata.
  EXPECT_GE(last_ts.size(), 2u);
  for (const auto& [track, ts] : last_ts) {
    (void)ts;
    EXPECT_TRUE(named_tracks.count(track)) << "unnamed track " << track;
  }
}

// -----------------------------------------------------------------------------
// Checkpoint contract of the sink pointer
// -----------------------------------------------------------------------------

TEST(SocTrace, SinkSurvivesResetAndFollowsCheckpointCopies) {
  trace::StreamCapture cap;
  soc::Soc soc;
  soc.set_trace_sink(&cap);
  EXPECT_EQ(soc.trace_sink(), &cap);
  EXPECT_EQ(soc.bus().trace_sink(), &cap);

  soc.reset();  // rebuilds the bus; the sink must be re-installed
  EXPECT_EQ(soc.bus().trace_sink(), &cap);

  soc::Soc copy = soc;  // checkpoint copy carries the pointer verbatim
  EXPECT_EQ(copy.trace_sink(), &cap);
  EXPECT_EQ(copy.bus().trace_sink(), &cap);

  copy.set_trace_sink(nullptr);  // the restorer's responsibility
  EXPECT_EQ(copy.trace_sink(), nullptr);
  EXPECT_EQ(copy.bus().trace_sink(), nullptr);
  EXPECT_EQ(soc.bus().trace_sink(), &cap);  // original untouched
}

// -----------------------------------------------------------------------------
// Determinism audits (the tier-1 check behind tools/detscope)
// -----------------------------------------------------------------------------

TEST(DeterminismAudit, AluCacheWrappedIsDeterministic) {
  const auto r = trace::audit_determinism(*core::make_alu_test());
  EXPECT_TRUE(r.passed()) << r.detail;
  EXPECT_GT(r.window_events_solo, 0u);
  EXPECT_EQ(r.window_events_solo, r.window_events_contended);
  // The neighbours really were hammering the bus while the window ran.
  EXPECT_GT(r.contended_neighbor_grants, 0u);
}

TEST(DeterminismAudit, FwdPcCacheWrappedIsDeterministic) {
  const auto* e = core::find_routine("fwd-pc");
  ASSERT_NE(e, nullptr);
  const auto r = trace::audit_determinism(*e->make());
  EXPECT_TRUE(r.passed()) << r.detail;
}

// -----------------------------------------------------------------------------
// Campaign tracing + thread-count determinism
// -----------------------------------------------------------------------------

struct CampaignFixture {
  fault::CampaignConfig cc;
  fault::SocFactory factory;
};

CampaignFixture make_fwd_campaign(u32 stride) {
  const auto routine = core::make_fwd_test(/*with_perf_counters=*/false);
  exp::Scenario sc;
  sc.active_cores = 1;
  sc.label = "trace-campaign";
  auto tests = exp::build_scenario_tests(*routine, core::WrapperKind::kPlain, sc,
                                         /*graded=*/0, /*use_perf_counters=*/false);
  CampaignFixture f;
  f.cc.module = fault::Module::kFwd;
  f.cc.core_id = 0;
  f.cc.kind = isa::CoreKind::kA;
  f.cc.fault_stride = stride;
  f.factory = exp::scenario_factory(std::move(tests), sc, 0);
  return f;
}

TEST(CampaignTrace, LifecycleEventsWallClockAndThreads) {
  auto f = make_fwd_campaign(/*stride=*/16);
  trace::StreamCapture cap;
  f.cc.sink = &cap;
  f.cc.threads = 2;
  fault::Campaign campaign(f.cc, f.factory);
  const auto res = campaign.run();

  EXPECT_EQ(res.threads_used, 2u);
  EXPECT_GT(res.wall_seconds, 0.0);

  u64 fault_events = 0;
  bool done_seen = false;
  for (const auto& e : cap.events()) {
    if (e.kind == trace::EventKind::kCampaignFault) ++fault_events;
    if (e.kind == trace::EventKind::kCampaignDone) {
      done_seen = true;
      EXPECT_EQ(e.a, static_cast<u32>(res.detected));
      EXPECT_EQ(e.b, static_cast<u32>(res.simulated_faults));
    }
  }
  EXPECT_TRUE(done_seen);
  EXPECT_EQ(fault_events, res.simulated_faults);
}

TEST(CampaignAudit, ByteIdenticalAcrossThreadCounts) {
  auto f = make_fwd_campaign(/*stride=*/8);
  const auto r = trace::audit_campaign_determinism(f.cc, f.factory, {1, 2, 8});
  EXPECT_TRUE(r.passed()) << r.detail;
  EXPECT_GT(r.events, 0u);
  ASSERT_EQ(r.thread_counts.size(), 3u);
}

// ----------------------------------------------------------------------------
// Event-stream files (trace_io.h)
// ----------------------------------------------------------------------------

TEST(TraceIo, EventFileRoundTripsByteExactly) {
  std::vector<trace::Event> events;
  for (unsigned i = 0; i < 37; ++i) {
    trace::Event e;
    e.cycle = 1000 + i;
    e.kind = i % 2 ? trace::EventKind::kCacheMiss : trace::EventKind::kBusGrant;
    e.core = static_cast<u8>(i % 3);
    e.unit = static_cast<u8>(i % 2);
    e.flags = static_cast<u8>(i & 1);
    e.addr = 0x10002000 + i * 32;
    e.a = i;
    e.b = ~i;
    events.push_back(e);
  }
  const std::string path = ::testing::TempDir() + "roundtrip.dsev";
  ASSERT_TRUE(trace::write_events_file(path, events));
  const auto r = trace::read_events_file(path);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.events.size(), events.size());
  EXPECT_EQ(trace::serialize(r.events), trace::serialize(events));
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsGarbageAndTruncation) {
  const std::string path = ::testing::TempDir() + "garbage.dsev";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not an event file at all", f);
  std::fclose(f);
  EXPECT_FALSE(trace::read_events_file(path).ok);
  EXPECT_FALSE(trace::read_events_file(path + ".missing").ok);
  std::remove(path.c_str());
}

// ----------------------------------------------------------------------------
// Static<->dynamic cross-validation (xval.h)
// ----------------------------------------------------------------------------

TEST(Xval, QuickstartRunMatchesStaticPrediction) {
  // Record the 1-core quickstart scenario in-process, then replay it against
  // the abstract interpreter: predicted exec miss set == observed (empty),
  // loading refills inside the may-footprint, bus waits within d_max.
  const auto routine = core::find_routine("alu")->make();
  const auto bt = core::build_wrapped(*routine, core::WrapperKind::kCacheBased,
                                      core::quickstart_env(0, true));
  soc::Soc soc;
  soc.load_program(bt.prog);
  soc.set_boot(0, bt.prog.entry());
  for (unsigned c = 1; c < 3; ++c) soc.set_active(c, false);
  trace::StreamCapture capture;
  soc.set_trace_sink(&capture);
  soc.reset();
  ASSERT_FALSE(soc.run(5'000'000).timed_out);

  trace::XvalOptions opt;
  opt.routine = "alu";
  opt.cores = 1;
  const auto r = trace::cross_validate(capture.events(), opt);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.passed()) << trace::format(r);
  ASSERT_EQ(r.cores.size(), 1u);
  EXPECT_TRUE(r.cores[0].statically_proven);
  EXPECT_EQ(r.cores[0].exec_misses, 0u);
  EXPECT_EQ(r.cores[0].unpredicted_refills, 0u);
  EXPECT_GT(r.cores[0].loading_refills, 0u);
  EXPECT_EQ(r.d_max, 44u);  // 1 core -> 3 requesters
}

TEST(Xval, ExecLoopMissRefutesThePrediction) {
  // Inject a synthetic execution-loop miss into an otherwise-passing trace:
  // the cross-validator must flag it (predicted miss set is empty).
  const auto routine = core::find_routine("alu")->make();
  const auto bt = core::build_wrapped(*routine, core::WrapperKind::kCacheBased,
                                      core::quickstart_env(0, true));
  soc::Soc soc;
  soc.load_program(bt.prog);
  soc.set_boot(0, bt.prog.entry());
  for (unsigned c = 1; c < 3; ++c) soc.set_active(c, false);
  trace::StreamCapture capture;
  soc.set_trace_sink(&capture);
  soc.reset();
  ASSERT_FALSE(soc.run(5'000'000).timed_out);

  std::vector<trace::Event> events = capture.events();
  // Place the fake miss right after the execution-loop phase marker.
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == trace::EventKind::kPhaseBegin &&
        static_cast<trace::Phase>(events[i].unit) ==
            trace::Phase::kExecutionLoop) {
      trace::Event miss;
      miss.cycle = events[i].cycle + 1;
      miss.kind = trace::EventKind::kCacheMiss;
      miss.core = 0;
      miss.unit = 1;
      miss.addr = 0x20008000;
      events.insert(events.begin() + static_cast<std::ptrdiff_t>(i) + 1, miss);
      break;
    }
  }

  trace::XvalOptions opt;
  opt.routine = "alu";
  opt.cores = 1;
  const auto r = trace::cross_validate(events, opt);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.passed());
  EXPECT_EQ(r.cores[0].exec_misses, 1u);
}

}  // namespace
}  // namespace detstl
