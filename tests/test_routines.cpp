// STL routine properties: every routine builds under every wrapper on every
// core kind, emission is deterministic, programs fit their caches, signatures
// are non-trivial, and suites compose without label collisions.

#include <gtest/gtest.h>

#include "core/routines.h"
#include "core/signature.h"
#include "core/stl.h"
#include "testutil.h"

namespace detstl::core {
namespace {

using isa::CoreKind;

BuildEnv env_for(unsigned core_id) {
  BuildEnv env;
  env.core_id = core_id;
  env.kind = static_cast<CoreKind>(core_id);
  env.code_base = mem::kFlashBase + 0x2000 + core_id * 0x40000;
  env.data_base = default_data_base(core_id);
  return env;
}

std::vector<std::unique_ptr<SelfTestRoutine>> all_routines() {
  std::vector<std::unique_ptr<SelfTestRoutine>> v;
  v.push_back(make_fwd_test(false));
  v.push_back(make_fwd_test(true));
  v.push_back(make_icu_test());
  v.push_back(make_alu_test());
  v.push_back(make_rf_march_test());
  v.push_back(make_shifter_test());
  v.push_back(make_branch_test());
  v.push_back(make_muldiv_test());
  return v;
}

// Every routine x every wrapper x every core kind: builds, calibrates, and
// passes fault-free.
class RoutineMatrix : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RoutineMatrix, BuildsCalibratesAndPasses) {
  const auto [routine_idx, wrapper_idx] = GetParam();
  const auto routines = all_routines();
  const auto& r = *routines[routine_idx];
  const auto w = static_cast<WrapperKind>(wrapper_idx);
  for (unsigned core = 0; core < 3; ++core) {
    const BuiltTest bt = build_wrapped(r, w, env_for(core));
    EXPECT_GT(bt.code_bytes, 0u);
    EXPECT_NE(bt.golden, kSignatureSeed) << "signature never accumulated";
    soc::Soc s;
    s.load_program(bt.prog);
    s.set_boot(core, bt.prog.entry());
    s.reset();
    ASSERT_FALSE(s.run(10'000'000).timed_out) << r.name();
    const auto v = read_verdict(s, soc::mailbox_addr(core));
    EXPECT_EQ(v.status, soc::kStatusPass)
        << r.name() << " / " << wrapper_name(w) << " / core " << core;
    EXPECT_EQ(v.signature, bt.golden);
  }
}

INSTANTIATE_TEST_SUITE_P(All, RoutineMatrix,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Range(0, 3)));

TEST(Routines, EmissionIsDeterministic) {
  for (const auto& r : all_routines()) {
    const BuiltTest a = build_wrapped(*r, WrapperKind::kCacheBased, env_for(0));
    const BuiltTest b = build_wrapped(*r, WrapperKind::kCacheBased, env_for(0));
    EXPECT_EQ(a.golden, b.golden) << r->name();
    EXPECT_EQ(a.code_bytes, b.code_bytes);
    ASSERT_EQ(a.prog.segments().size(), b.prog.segments().size());
    for (std::size_t i = 0; i < a.prog.segments().size(); ++i)
      EXPECT_EQ(a.prog.segments()[i].bytes, b.prog.segments()[i].bytes) << r->name();
  }
}

TEST(Routines, CacheWrappedProgramsFitTheICache) {
  const u32 icache = mem::MemSystemConfig{}.icache.size_bytes;
  for (const auto& r : all_routines()) {
    for (unsigned core = 0; core < 3; ++core) {
      const BuiltTest bt = build_wrapped(*r, WrapperKind::kCacheBased, env_for(core));
      EXPECT_LE(bt.code_bytes, icache) << r->name() << " core " << core;
    }
  }
}

TEST(Routines, TcmWrappedBlocksFitTheTcm) {
  for (const auto& r : all_routines()) {
    const BuiltTest bt = build_wrapped(*r, WrapperKind::kTcmBased, env_for(0));
    EXPECT_GT(bt.tcm_bytes, 0u) << r->name();
    EXPECT_LE(bt.tcm_bytes, mem::kItcmSize) << r->name();
    EXPECT_EQ(bt.tcm_bytes % 16, 0u) << "copy-granule padding";
  }
}

TEST(Routines, DistinctRoutinesProduceDistinctSignatures) {
  std::set<u32> goldens;
  for (const auto& r : all_routines())
    goldens.insert(build_wrapped(*r, WrapperKind::kCacheBased, env_for(0)).golden);
  EXPECT_EQ(goldens.size(), all_routines().size());
}

TEST(Routines, MisrStepMatchesAssemblyConvention) {
  // The C++ mirror: rotl1 ^ value. Spot-check the identity used everywhere.
  EXPECT_EQ(misr_step(0x80000000u, 0), 0x1u);
  EXPECT_EQ(misr_step(0x00000001u, 0xff), 0x2u ^ 0xffu);
  u32 sig = kSignatureSeed;
  sig = misr_step(sig, 0xdead);
  sig = misr_step(sig, 0xbeef);
  EXPECT_NE(sig, kSignatureSeed);
}

TEST(Routines, TextRoutinePlugsIntoEveryWrapper) {
  const auto routine = make_text_routine("xor-chain.s", R"(
      li   r1, 0x13579bdf
      li   r2, 0x2468ace0
      xor  r3, r1, r2
      slli r26, r29, 1
      srli r29, r29, 31
      or   r29, r26, r29
      xor  r29, r29, r3
      addi r4, r0, 4
    loop:
      add  r3, r3, r1
      addi r4, r4, -1
      bne  r4, r0, loop
      slli r26, r29, 1
      srli r29, r29, 31
      or   r29, r26, r29
      xor  r29, r29, r3
  )");
  for (int w = 0; w < 3; ++w) {
    const BuiltTest bt =
        build_wrapped(*routine, static_cast<WrapperKind>(w), env_for(0));
    soc::Soc s;
    s.load_program(bt.prog);
    s.set_boot(0, bt.prog.entry());
    s.reset();
    ASSERT_FALSE(s.run(5'000'000).timed_out);
    EXPECT_EQ(read_verdict(s, soc::mailbox_addr(0)).status, soc::kStatusPass)
        << wrapper_name(static_cast<WrapperKind>(w));
  }
}

TEST(Routines, TwoTextRoutinesComposeInASuite) {
  const char* body = R"(
    top:
      li   r1, 0x55
      slli r26, r29, 1
      srli r29, r29, 31
      or   r29, r26, r29
      xor  r29, r29, r1
  )";
  auto r1 = make_text_routine("a.s", body);
  auto r2 = make_text_routine("b.s", body);
  SuiteSpec spec;
  spec.routines = {r1.get(), r2.get()};
  spec.wrapper = WrapperKind::kCacheBased;
  spec.env = env_for(0);
  const BuiltSuite suite = build_suite(spec);  // label prefixing: no collision
  soc::Soc s;
  s.load_program(suite.prog);
  s.set_boot(0, suite.prog.entry());
  s.reset();
  ASSERT_FALSE(s.run(5'000'000).timed_out);
  for (const auto& v : read_suite_verdicts(s, suite))
    EXPECT_EQ(v.status, soc::kStatusPass);
}

TEST(Suites, TwoRoutinesComposeWithoutLabelCollisions) {
  auto alu = make_alu_test();
  auto sh = make_shifter_test();
  SuiteSpec spec;
  spec.routines = {alu.get(), sh.get()};
  spec.wrapper = WrapperKind::kCacheBased;
  spec.env = env_for(0);
  const BuiltSuite suite = build_suite(spec);
  EXPECT_EQ(suite.goldens.size(), 2u);
  EXPECT_NE(suite.goldens[0], suite.goldens[1]);

  soc::Soc s;
  s.load_program(suite.prog);
  s.set_boot(0, suite.prog.entry());
  s.reset();
  ASSERT_FALSE(s.run(20'000'000).timed_out);
  const auto verdicts = read_suite_verdicts(s, suite);
  for (const auto& v : verdicts) EXPECT_EQ(v.status, soc::kStatusPass);
}

TEST(Suites, SuiteGoldensMatchStandaloneForValueOnlyRoutines) {
  // Value-only signatures are position-independent: the standalone build and
  // the suite build of the same routine agree.
  auto alu = make_alu_test();
  const BuiltTest alone = build_wrapped(*alu, WrapperKind::kCacheBased, env_for(0));
  SuiteSpec spec;
  spec.routines = {alu.get()};
  spec.wrapper = WrapperKind::kCacheBased;
  spec.env = env_for(0);
  const BuiltSuite suite = build_suite(spec);
  EXPECT_EQ(suite.goldens[0], alone.golden);
}

TEST(Suites, BarrierCountersMonotoneAcrossPhases) {
  auto stl = make_boot_stl();
  soc::Soc s;
  std::vector<BuiltSuite> suites;
  std::array<std::vector<std::unique_ptr<SelfTestRoutine>>, 3> stls = {
      make_boot_stl(), make_boot_stl(), make_boot_stl()};
  for (unsigned c = 0; c < 3; ++c) {
    SuiteSpec spec;
    for (const auto& r : stls[c]) spec.routines.push_back(r.get());
    spec.wrapper = WrapperKind::kPlain;
    spec.env = env_for(c);
    spec.barriers = true;
    spec.barrier_cores = 3;
    suites.push_back(build_suite(spec));
    s.load_program(suites.back().prog);
    s.set_boot(c, suites.back().prog.entry());
  }
  s.reset();
  ASSERT_FALSE(s.run(50'000'000).timed_out);
  // Every phase barrier saw exactly three arrivals.
  for (unsigned phase = 0; phase < stls[0].size(); ++phase)
    EXPECT_EQ(s.debug_read32(kDefaultBarrierBase + 4 * phase), 3u) << "phase " << phase;
}

}  // namespace
}  // namespace detstl::core
