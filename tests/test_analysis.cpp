// The static determinism verifier as executable invariants:
//  * CFG construction: reachability follows branches/calls, stops at halt,
//    never decodes embedded data;
//  * interval analysis resolves li/la-based addressing and bounds strided
//    loop pointers to their declared data region;
//  * each negative fixture trips exactly its rule class;
//  * crafted I-cache and D-cache set aliasing is rejected;
//  * the no-write-allocate dummy-load ablation is flagged on the real
//    wrapper output, and the fix-up makes it clean;
//  * every shipped routine lints clean under both write-allocate modes;
//  * build_wrapped() surfaces the report by default and kEnforce throws.

#include <gtest/gtest.h>

#include "analysis/absint.h"
#include "analysis/analyzer.h"
#include "analysis/fixtures.h"
#include "analysis/sarif.h"
#include "core/routines.h"
#include "core/scenario_matrix.h"
#include "core/wrapper.h"

namespace detstl::analysis {
namespace {

using namespace isa;

constexpr u32 kBase = mem::kFlashBase + 0x1000;
constexpr u32 kData = mem::kSramBase + 0x8000;

// ----------------------------------------------------------------------------
// CFG construction
// ----------------------------------------------------------------------------

TEST(Cfg, StraightLineIsOneBlockEndingAtHalt) {
  Assembler a(kBase);
  a.addi(R1, R0, 1);
  a.addi(R2, R1, 2);
  a.halt();
  a.word(0xdeadbeef);  // data after halt: must not be decoded
  const Program p = a.assemble();
  Cfg g(ImageView(p), {p.entry()});
  ASSERT_EQ(g.blocks().size(), 1u);
  const BasicBlock& bb = g.blocks().begin()->second;
  EXPECT_EQ(bb.begin, kBase);
  EXPECT_EQ(bb.end, kBase + 12);
  EXPECT_TRUE(bb.succs.empty());
  EXPECT_FALSE(bb.falls_off);
  EXPECT_FALSE(g.reachable(kBase + 12));  // the data word
}

TEST(Cfg, BranchSplitsBlocksAndRecordsBackEdge) {
  Assembler a(kBase);
  a.addi(R1, R0, 3);          // kBase
  a.label("loop");            // kBase+4
  a.addi(R1, R1, -1);
  a.bne(R1, R0, "loop");      // kBase+8: back edge
  a.halt();                   // kBase+12
  const Program p = a.assemble();
  Cfg g(ImageView(p), {p.entry()});
  ASSERT_EQ(g.blocks().size(), 3u);
  const auto edges = g.back_edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].first, kBase + 8);
  EXPECT_EQ(edges[0].second, kBase + 4);
  const BasicBlock* loop = g.block_at(kBase + 4);
  ASSERT_NE(loop, nullptr);
  ASSERT_EQ(loop->succs.size(), 2u);  // taken + fall-through
}

TEST(Cfg, GotoIdiomHasNoFallthroughSuccessor) {
  Assembler a(kBase);
  a.beq(R0, R0, "skip");  // unconditional by same-register folding
  a.word(0);              // never reached, never decoded
  a.label("skip");
  a.halt();
  const Program p = a.assemble();
  Cfg g(ImageView(p), {p.entry()});
  EXPECT_FALSE(g.reachable(kBase + 4));
  const BasicBlock* b0 = g.block_of(kBase);
  ASSERT_NE(b0, nullptr);
  EXPECT_FALSE(b0->falls_off);
  ASSERT_EQ(b0->succs.size(), 1u);
  EXPECT_EQ(b0->succs[0], kBase + 8);
}

TEST(Cfg, CallApproximationReachesCalleeAndContinuation) {
  Assembler a(kBase);
  a.jal(R31, "sub");   // call
  a.halt();            // continuation
  a.label("sub");
  a.addi(R1, R0, 7);
  a.ret();
  const Program p = a.assemble();
  Cfg g(ImageView(p), {p.entry()});
  EXPECT_TRUE(g.reachable(kBase + 4));   // halt after the call
  EXPECT_TRUE(g.reachable(kBase + 8));   // callee body
  EXPECT_TRUE(g.reachable(kBase + 12));  // ret
}

// ----------------------------------------------------------------------------
// Interval analysis
// ----------------------------------------------------------------------------

TEST(ConstProp, LiBasedAddressingResolvesToConstant) {
  Assembler a(kBase);
  a.li(R1, kData);        // kBase..kBase+8
  a.lw(R2, R1, 12);       // kBase+8
  a.halt();
  const Program p = a.assemble();
  Cfg g(ImageView(p), {p.entry()});
  const ConstPropResult cp = propagate(g, {});
  auto it = cp.access_addr.find(kBase + 8);
  ASSERT_NE(it, cp.access_addr.end());
  EXPECT_TRUE(it->second.is_const());
  EXPECT_EQ(it->second.lo, kData + 12);
}

TEST(ConstProp, StridedLoopPointerStaysWithinDeclaredRegion) {
  Assembler a(kBase);
  a.li(R1, kData);
  a.li(R2, kData + 1024);  // big enough to force widening
  a.label("loop");
  a.lw(R3, R1, 0);         // kBase+16
  a.addi(R1, R1, 4);
  a.bne(R1, R2, "loop");
  a.halt();
  const Program p = a.assemble();
  Cfg g(ImageView(p), {p.entry()});
  const ConstPropResult cp = propagate(g, {{kData, 1024}});
  auto it = cp.access_addr.find(kBase + 16);
  ASSERT_NE(it, cp.access_addr.end());
  ASSERT_TRUE(it->second.bounded());
  EXPECT_GE(it->second.lo, kData);
  EXPECT_LE(it->second.hi, kData + 1024);
}

TEST(ConstProp, MtvecWriteIsCollectedAsTrapRoot) {
  Assembler a(kBase);
  a.la(R1, "isr");
  a.csrw(Csr::kMtvec, R1);
  a.halt();
  a.label("isr");
  a.eret();
  const Program p = a.assemble();
  Cfg g(ImageView(p), {p.entry()});
  const ConstPropResult cp = propagate(g, {});
  ASSERT_EQ(cp.mtvec_targets.size(), 1u);
  EXPECT_EQ(cp.mtvec_targets[0], p.symbol("isr"));
}

// ----------------------------------------------------------------------------
// Rule classes on negative fixtures
// ----------------------------------------------------------------------------

TEST(Analyzer, EveryNegativeFixtureTripsItsRule) {
  for (const auto& f : negative_fixtures()) {
    const Report rep = analyze(f.prog, f.cfg);
    EXPECT_TRUE(rep.has(f.expect)) << f.name << ":\n" << rep.format();
    if (f.expect_severity == Severity::kError) {
      EXPECT_FALSE(rep.clean()) << f.name;
    }
  }
}

TEST(Analyzer, CraftedIcacheSetAliasingIsRejected) {
  const auto fixtures = negative_fixtures();
  const Fixture* f = find_fixture(fixtures, "set-conflict");
  ASSERT_NE(f, nullptr);
  const Report rep = analyze(f->prog, f->cfg);
  ASSERT_TRUE(rep.has(Rule::kIcacheConflict)) << rep.format();
  // Exactly the one conflict — no collateral findings.
  EXPECT_EQ(rep.errors(), 1u) << rep.format();
}

TEST(Analyzer, CraftedDcacheSetAliasingIsRejected) {
  // Default D-cache: 4 KiB, 2-way, 32 B lines -> the set index cycles every
  // 2 KiB. Three loads 2 KiB apart alias one set beyond the associativity.
  Assembler a(kBase);
  a.li(R1, kData);
  a.li(R5, 2);
  a.label("loop");
  a.lw(R2, R1, 0);
  a.lw(R3, R1, 2048);
  a.lw(R4, R1, 4096);
  a.addi(R5, R5, -1);
  a.bne(R5, R0, "loop");
  a.halt();
  AnalysisConfig cfg;
  cfg.loop_symbol = "loop";
  cfg.data_regions = {{kData, 8192}};
  const Report rep = analyze(a.assemble(), cfg);
  EXPECT_TRUE(rep.has(Rule::kDcacheConflict)) << rep.format();

  // Two lines per set is within the associativity: clean.
  Assembler b(kBase);
  b.li(R1, kData);
  b.li(R5, 2);
  b.label("loop");
  b.lw(R2, R1, 0);
  b.lw(R3, R1, 2048);
  b.addi(R5, R5, -1);
  b.bne(R5, R0, "loop");
  b.halt();
  const Report rep2 = analyze(b.assemble(), cfg);
  EXPECT_TRUE(rep2.clean()) << rep2.format();
}

// ----------------------------------------------------------------------------
// The no-write-allocate dummy-load rule on real wrapper output
// ----------------------------------------------------------------------------

core::BuildEnv nwa_env(bool omit_fixup) {
  core::BuildEnv env;
  env.write_allocate = false;
  env.omit_nwa_dummy_loads = omit_fixup;
  return env;
}

TEST(Analyzer, NwaAblationIsFlaggedOnRealWrapperOutput) {
  // The fwd routine spills its signature to a store-only cache line — the
  // exact pattern the dummy-load fix-up exists for. Ablating the fix-up
  // under no-write-allocate must be flagged; restoring it must be clean.
  const auto routine = core::make_fwd_test(false);
  const core::BuiltTest bad = core::build_wrapped(
      *routine, core::WrapperKind::kCacheBased, nwa_env(true));
  EXPECT_TRUE(bad.lint.has(Rule::kNwaMissingDummyLoad)) << bad.lint.format();
  EXPECT_FALSE(bad.lint.clean());

  const core::BuiltTest good = core::build_wrapped(
      *routine, core::WrapperKind::kCacheBased, nwa_env(false));
  EXPECT_TRUE(good.lint.clean()) << good.lint.format();
}

TEST(Analyzer, NwaAblationIsHarmlessWhenARoundTripLoadCoversTheLine) {
  // The ALU routine's only store is followed by an explicit load of the same
  // word (a data-path round trip), so the line is allocated either way — the
  // analyzer must not cry wolf here even with the fix-up ablated.
  const auto routine = core::make_alu_test();
  const core::BuiltTest bt = core::build_wrapped(
      *routine, core::WrapperKind::kCacheBased, nwa_env(true));
  EXPECT_TRUE(bt.lint.clean()) << bt.lint.format();
}

TEST(Analyzer, EnforceModeThrowsOnAblatedBuild) {
  core::BuildEnv env = nwa_env(true);
  env.lint = core::LintMode::kEnforce;
  const auto routine = core::make_fwd_test(false);
  EXPECT_THROW(
      core::build_wrapped(*routine, core::WrapperKind::kCacheBased, env),
      AnalysisError);
}

TEST(Analyzer, OffModeSkipsTheReport) {
  core::BuildEnv env;
  env.lint = core::LintMode::kOff;
  const auto routine = core::make_alu_test();
  const core::BuiltTest bt =
      core::build_wrapped(*routine, core::WrapperKind::kCacheBased, env);
  EXPECT_TRUE(bt.lint.diagnostics().empty());
}

// ----------------------------------------------------------------------------
// Regression: every shipped routine lints clean under both WA modes
// ----------------------------------------------------------------------------

std::vector<std::unique_ptr<core::SelfTestRoutine>> shipped_routines() {
  std::vector<std::unique_ptr<core::SelfTestRoutine>> rs;
  rs.push_back(core::make_alu_test());
  rs.push_back(core::make_rf_march_test());
  rs.push_back(core::make_shifter_test());
  rs.push_back(core::make_branch_test());
  rs.push_back(core::make_muldiv_test());
  rs.push_back(core::make_fwd_test(false));
  rs.push_back(core::make_fwd_test(true));
  rs.push_back(core::make_icu_test());
  return rs;
}

TEST(Analyzer, ShippedRoutinesLintCleanUnderBothWriteAllocateModes) {
  for (const auto& r : shipped_routines()) {
    for (bool wa : {true, false}) {
      core::BuildEnv env;
      env.write_allocate = wa;
      const core::BuiltTest bt =
          core::build_wrapped(*r, core::WrapperKind::kCacheBased, env);
      EXPECT_TRUE(bt.lint.clean())
          << r->name() << " wa=" << wa << "\n" << bt.lint.format();
      EXPECT_EQ(bt.lint.warnings(), 0u)
          << r->name() << " wa=" << wa << "\n" << bt.lint.format();
    }
  }
}

TEST(Analyzer, ShippedRoutinesLintCleanOnEveryCoreKind) {
  for (unsigned c = 0; c < 3; ++c) {
    core::BuildEnv env;
    env.kind = static_cast<CoreKind>(c);
    env.core_id = c;
    const auto r = core::make_alu_test();
    const core::BuiltTest bt =
        core::build_wrapped(*r, core::WrapperKind::kCacheBased, env);
    EXPECT_TRUE(bt.lint.clean()) << "core " << c << "\n" << bt.lint.format();
  }
}

// ----------------------------------------------------------------------------
// CFG / loop-structure corner cases
// ----------------------------------------------------------------------------

TEST(Cfg, MultiLatchLoopMergesBackEdgesIntoOneRegion) {
  // Two conditional latches returning to the same head — a 'continue'-style
  // loop. The region must extend to the *widest* back edge.
  Assembler a(kBase);
  a.li(R1, 4);
  a.label("loop");
  a.addi(R1, R1, -1);
  a.beq(R1, R0, "done");
  a.andi(R2, R1, 1);
  a.bne(R2, R0, "loop");  // latch 1: odd counter continues early
  a.addi(R3, R3, 1);
  a.bne(R1, R0, "loop");  // latch 2: even counter's full body
  a.label("done");
  a.halt();
  const Program p = a.assemble();
  Cfg g(ImageView(p), {p.entry()});
  const LoopRegion loop = find_loop(p, g, "loop");
  ASSERT_TRUE(loop.found);
  EXPECT_EQ(loop.head, p.symbol("loop"));
  EXPECT_EQ(loop.end, p.symbol("done") - 4);  // the second latch

  AnalysisConfig cfg;
  cfg.loop_symbol = "loop";
  const Report rep = analyze(p, cfg);  // must terminate, not assert/crash
  // Data-dependent latches defeat the replay argument, so the conservative
  // verdict may be exec-unproven — but the loop itself must be recognised
  // (no "no loop found" finding) and nothing may be misread as unreachable.
  for (const auto& d : rep.diagnostics())
    EXPECT_NE(d.rule, Rule::kUnreachableEntry) << rep.format();
}

TEST(Cfg, CodeAfterHaltStaysUndecoded) {
  Assembler a(kBase);
  a.li(R1, 1);
  a.halt();
  a.addi(R2, R2, 1);   // unreachable
  a.word(0xffffffff);  // garbage that must never be decoded
  const Program p = a.assemble();
  Cfg g(ImageView(p), {p.entry()});
  EXPECT_FALSE(g.reachable(kBase + 12));
  AnalysisConfig cfg;
  cfg.check_cache_determinism = false;
  const Report rep = analyze(p, cfg);
  EXPECT_TRUE(rep.clean()) << rep.format();
}

TEST(Analyzer, JalrThroughLoadedPointerDegradesToWarning) {
  // The in-loop indirect call cannot be resolved: the footprint may be
  // incomplete, which is a warning — never a crash, never a spurious error
  // (every resolvable access is still proven).
  const auto fixtures = negative_fixtures();
  const Fixture* f = find_fixture(fixtures, "indirect-loop-call");
  ASSERT_NE(f, nullptr);
  const Report rep = analyze(f->prog, f->cfg);
  EXPECT_TRUE(rep.has(Rule::kUnresolvedAddress)) << rep.format();
  EXPECT_EQ(rep.errors(), 0u) << rep.format();
}

// ----------------------------------------------------------------------------
// Abstract interpretation: proof obligations
// ----------------------------------------------------------------------------

TEST(AbsInt, ShippedRoutineDischargesEveryObligation) {
  const auto routine = core::find_routine("alu")->make();
  core::BuildEnv env;
  const Program prog =
      core::assemble_wrapped(*routine, core::WrapperKind::kCacheBased, env);
  const AnalysisConfig acfg =
      core::lint_config(*routine, core::WrapperKind::kCacheBased, env);
  const ProgramModel model = build_model(prog, acfg);
  const AbsIntResult ai = interpret(prog, acfg, model);
  ASSERT_TRUE(ai.analyzable) << ai.not_analyzable_why;
  EXPECT_TRUE(ai.all_proven());
  EXPECT_EQ(ai.status(ObligationKind::kExecMissFree),
            ObligationStatus::kProven);
  EXPECT_EQ(ai.status(ObligationKind::kCrossCoreDisjoint),
            ObligationStatus::kNotApplicable);  // single-core scenario
  // Closed form for the default geometry: t_max = 1 + 8 + 3*2 = 15,
  // d_max = (3-1)*15 + 14 = 44 with one core's three requesters.
  EXPECT_EQ(ai.bound.t_max, 15u);
  EXPECT_EQ(ai.bound.d_max, 44u);
  EXPECT_FALSE(ai.predicted_loading_ilines.empty());
  EXPECT_FALSE(ai.predicted_loading_dlines.empty());
}

TEST(AbsInt, SetConflictRefutesTheNoEvictionPremise) {
  const auto fixtures = negative_fixtures();
  const Fixture* f = find_fixture(fixtures, "dcache-conflict");
  ASSERT_NE(f, nullptr);
  const AbsIntResult ai = interpret(f->prog, f->cfg);
  ASSERT_TRUE(ai.analyzable);
  EXPECT_EQ(ai.status(ObligationKind::kSetConflictFree),
            ObligationStatus::kRefuted);
  EXPECT_FALSE(ai.all_proven());
}

TEST(AbsInt, PeerOverlapRefutesCrossCoreDisjointness) {
  const auto fixtures = negative_fixtures();
  const Fixture* f = find_fixture(fixtures, "ai-cross-core-overlap");
  ASSERT_NE(f, nullptr);
  const AbsIntResult ai = interpret(f->prog, f->cfg);
  ASSERT_TRUE(ai.analyzable);
  EXPECT_EQ(ai.status(ObligationKind::kCrossCoreDisjoint),
            ObligationStatus::kRefuted);
}

// ----------------------------------------------------------------------------
// Scenario matrix + SARIF
// ----------------------------------------------------------------------------

TEST(ScenarioMatrix, DefaultGridSweepsAtLeast100Configurations) {
  EXPECT_EQ(core::default_matrix_grid().size(), 144u);
}

TEST(ScenarioMatrix, SinglePointSmokeProvesOneRoutine) {
  const core::MatrixPoint p;  // default geometry, 1 core, placement 0
  const auto rep = core::run_matrix({p}, {core::find_routine("alu")});
  ASSERT_EQ(rep.configurations(), 1u);
  EXPECT_TRUE(rep.all_proven()) << core::format_matrix(rep);
  EXPECT_EQ(rep.cells[0].proofs, 1u);
  EXPECT_EQ(rep.cells[0].d_max, 44u);
  EXPECT_NE(core::matrix_json(rep).find("\"all_proven\":true"),
            std::string::npos);
}

TEST(Sarif, SerialisesDriverRulesAndFindings) {
  const auto fixtures = negative_fixtures();
  const Fixture* f = find_fixture(fixtures, "set-conflict");
  ASSERT_NE(f, nullptr);
  const Report rep = analyze(f->prog, f->cfg);
  const std::string s = to_sarif({{"set-conflict", &rep}});
  EXPECT_NE(s.find("sarif-2.1.0"), std::string::npos);
  EXPECT_NE(s.find("\"name\": \"stlint\""), std::string::npos);
  // Every catalogue rule is declared, findings carry rule id + level.
  for (const Rule r : rule_catalogue())
    EXPECT_NE(s.find(rule_id(r)), std::string::npos) << rule_id(r);
  EXPECT_NE(s.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(s.find("[set-conflict]"), std::string::npos);
}

}  // namespace
}  // namespace detstl::analysis
