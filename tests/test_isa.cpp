// ISA layer: encoding round-trips, operand classification, assembler fixups,
// disassembler smoke checks, ALU semantics.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "isa/alu.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "isa/encoding.h"

namespace detstl::isa {
namespace {

// ----------------------------------------------------------------------------
// Encode/decode round-trip over every opcode (parameterised sweep)
// ----------------------------------------------------------------------------

class RoundTrip : public ::testing::TestWithParam<unsigned> {};

Instr sample_for(Op op) {
  Instr in;
  in.op = op;
  switch (op_class(op)) {
    case OpClass::kAlu:
    case OpClass::kMulDiv:
      if (is_r64(op)) {
        in.rd = 4; in.rs1 = 6; in.rs2 = 8;
      } else {
        in.rd = 3; in.rs1 = 7; in.rs2 = 12;
      }
      if (!reads_rs2(in)) {
        in.rs2 = 0;
        switch (op) {
          case Op::kSlli: case Op::kSrli: case Op::kSrai: in.imm = 13; break;
          case Op::kAndi: case Op::kOri: case Op::kXori: case Op::kLui:
          case Op::kSltiu: in.imm = 0xabcd; break;
          default: in.imm = -1234; break;
        }
      }
      break;
    case OpClass::kMem:
      in.rd = 5; in.rs1 = 9; in.imm = -64;
      if (is_store(op)) { in.rs2 = 11; in.rd = 0; }
      if (op == Op::kAmoAdd) { in.rd = 5; in.rs2 = 11; in.imm = 0; }
      break;
    case OpClass::kBranch:
      if (op == Op::kJal) { in.rd = 31; in.imm = -2048; }
      else if (op == Op::kJalr) { in.rd = 31; in.rs1 = 4; in.imm = 16; }
      else { in.rs1 = 2; in.rs2 = 14; in.imm = 256; }
      break;
    case OpClass::kSys:
      if (op == Op::kCsrr) { in.rd = 6; in.csr = 0x123; }
      if (op == Op::kCsrw) { in.rs1 = 6; in.csr = 0x123; }
      break;
    case OpClass::kInvalid:
      break;
  }
  return in;
}

TEST_P(RoundTrip, EncodeDecode) {
  const Op op = static_cast<Op>(GetParam());
  if (op == Op::kInvalid) GTEST_SKIP();
  const Instr in = sample_for(op);
  const u32 word = encode(in);
  const Instr out = decode(word);
  EXPECT_EQ(out.op, in.op) << mnemonic(op);
  EXPECT_EQ(out.rd, writes_rd(in) || op == Op::kAmoAdd || op == Op::kJal ||
                            op == Op::kJalr || op == Op::kCsrr
                        ? in.rd
                        : out.rd);
  if (reads_rs1(in)) EXPECT_EQ(out.rs1, in.rs1) << mnemonic(op);
  if (reads_rs2(in)) EXPECT_EQ(out.rs2, in.rs2) << mnemonic(op);
  if (op != Op::kCsrr && op != Op::kCsrw && op_class(op) != OpClass::kSys)
    EXPECT_EQ(out.imm, in.imm) << mnemonic(op);
  EXPECT_EQ(out.csr, in.csr) << mnemonic(op);
}

INSTANTIATE_TEST_SUITE_P(AllOps, RoundTrip,
                         ::testing::Range(0u, static_cast<unsigned>(Op::kInvalid)));

TEST(Decode, UnknownMajorIsInvalid) {
  EXPECT_EQ(decode(0xffffffffu).op, Op::kInvalid);
  EXPECT_EQ(decode(0x00000000u).op, Op::kInvalid);  // major 0 is reserved
}

TEST(Decode, TotalOverRandomWordsAndFixpoint) {
  // The decoder must be total (random words never crash, worst case
  // kInvalid), and for any word that decodes to a valid instruction,
  // re-encoding the decoded form reproduces an equivalent decode
  // (ignore dead bits the encoding does not capture).
  Rng rng(0xD15A);
  unsigned valid = 0;
  for (int i = 0; i < 200000; ++i) {
    const u32 w = rng.next_u32();
    const Instr d = decode(w);
    if (d.op == Op::kInvalid) continue;
    ++valid;
    const Instr d2 = decode(encode(d));
    EXPECT_EQ(d2.op, d.op);
    EXPECT_EQ(d2.rd, d.rd);
    EXPECT_EQ(d2.rs1, d.rs1);
    EXPECT_EQ(d2.rs2, d.rs2);
    EXPECT_EQ(d2.imm, d.imm);
    EXPECT_EQ(d2.csr, d.csr);
  }
  EXPECT_GT(valid, 1000u);  // the opcode space is reasonably populated
}

// ----------------------------------------------------------------------------
// Classification
// ----------------------------------------------------------------------------

TEST(Classify, LoadsStores) {
  EXPECT_TRUE(is_load(Op::kLw));
  EXPECT_TRUE(is_load(Op::kAmoAdd));
  EXPECT_TRUE(is_store(Op::kSb));
  EXPECT_TRUE(is_store(Op::kAmoAdd));
  EXPECT_FALSE(is_load(Op::kSw));
  EXPECT_FALSE(is_store(Op::kLw));
}

TEST(Classify, StoreDoesNotWriteRd) {
  Instr sw{.op = Op::kSw, .rs1 = 1, .rs2 = 2};
  EXPECT_FALSE(writes_rd(sw));
  EXPECT_TRUE(reads_rs1(sw));
  EXPECT_TRUE(reads_rs2(sw));
}

TEST(Classify, ImmediateOpsDontReadRs2) {
  Instr addi{.op = Op::kAddi, .rd = 1, .rs1 = 2, .imm = 5};
  EXPECT_FALSE(reads_rs2(addi));
  Instr lui{.op = Op::kLui, .rd = 1, .imm = 5};
  EXPECT_FALSE(reads_rs1(lui));
}

TEST(Classify, R64Group) {
  EXPECT_TRUE(is_r64(Op::kAdd64));
  EXPECT_TRUE(is_r64(Op::kAddv64));
  EXPECT_FALSE(is_r64(Op::kAdd));
}

// ----------------------------------------------------------------------------
// ALU semantics
// ----------------------------------------------------------------------------

TEST(Alu, AddvOverflow) {
  auto r = alu32(Op::kAddv, 0x7fffffffu, 1);
  EXPECT_TRUE(r.overflow);
  EXPECT_EQ(r.value, 0x80000000u);
  r = alu32(Op::kAddv, 5, 7);
  EXPECT_FALSE(r.overflow);
}

TEST(Alu, SubvOverflow) {
  auto r = alu32(Op::kSubv, 0x80000000u, 1);
  EXPECT_TRUE(r.overflow);
  r = alu32(Op::kSubv, 10, 3);
  EXPECT_FALSE(r.overflow);
  EXPECT_EQ(r.value, 7u);
}

TEST(Alu, DivByZero) {
  auto r = alu32(Op::kDiv, 42, 0);
  EXPECT_TRUE(r.div_by_zero);
  EXPECT_EQ(r.value, 0xffffffffu);
  r = alu32(Op::kRem, 42, 0);
  EXPECT_TRUE(r.div_by_zero);
  EXPECT_EQ(r.value, 42u);
}

TEST(Alu, DivOverflowSaturates) {
  auto r = alu32(Op::kDiv, 0x80000000u, 0xffffffffu);
  EXPECT_FALSE(r.div_by_zero);
  EXPECT_EQ(r.value, 0x80000000u);
  r = alu32(Op::kRem, 0x80000000u, 0xffffffffu);
  EXPECT_EQ(r.value, 0u);
}

TEST(Alu, ShiftsMaskAmount) {
  EXPECT_EQ(alu32(Op::kSll, 1, 33).value, 2u);
  EXPECT_EQ(alu32(Op::kSra, 0x80000000u, 31).value, 0xffffffffu);
  EXPECT_EQ(alu32(Op::kSrl, 0x80000000u, 31).value, 1u);
}

TEST(Alu, MulhSigned) {
  EXPECT_EQ(alu32(Op::kMulh, 0xffffffffu, 2).value, 0xffffffffu);  // -1*2 hi
  EXPECT_EQ(alu32(Op::kMulh, 0x40000000u, 4).value, 1u);
}

TEST(Alu, Lui) { EXPECT_EQ(alu32(Op::kLui, 0, 0xabcd).value, 0xabcd0000u); }

TEST(Alu, Alu64AddvOverflow) {
  auto r = alu64(Op::kAddv64, 0x7fffffffffffffffull, 1);
  EXPECT_TRUE(r.overflow);
  r = alu64(Op::kAddv64, 1, 2);
  EXPECT_FALSE(r.overflow);
  EXPECT_EQ(r.value, 3u);
}

TEST(Alu, BranchPredicates) {
  EXPECT_TRUE(branch_taken(Op::kBeq, 5, 5));
  EXPECT_TRUE(branch_taken(Op::kBne, 5, 6));
  EXPECT_TRUE(branch_taken(Op::kBlt, 0xffffffffu, 0));   // -1 < 0 signed
  EXPECT_FALSE(branch_taken(Op::kBltu, 0xffffffffu, 0)); // unsigned
  EXPECT_TRUE(branch_taken(Op::kBge, 0, 0));
  EXPECT_TRUE(branch_taken(Op::kBgeu, 0xffffffffu, 1));
}

// ----------------------------------------------------------------------------
// Assembler
// ----------------------------------------------------------------------------

TEST(Assembler, ForwardAndBackwardBranches) {
  Assembler a(0x1000);
  a.label("top");
  a.addi(R1, R1, 1);
  a.bne(R1, R2, "top");
  a.beq(R1, R2, "end");
  a.nop();
  a.label("end");
  a.halt();
  const Program p = a.assemble();
  ASSERT_EQ(p.segments().size(), 1u);
  // bne at 0x1004 targets 0x1000 -> imm = -4
  const Instr bne = decode(p.segments()[0].bytes[4] |
                           (p.segments()[0].bytes[5] << 8) |
                           (p.segments()[0].bytes[6] << 16) |
                           (p.segments()[0].bytes[7] << 24));
  EXPECT_EQ(bne.op, Op::kBne);
  EXPECT_EQ(bne.imm, -4);
}

TEST(Assembler, LiExpandsToTwoInstructions) {
  Assembler a(0);
  a.li(R5, 0xdeadbeef);
  const Program p = a.assemble();
  EXPECT_EQ(p.size_bytes(), 8u);
  const auto& b = p.segments()[0].bytes;
  const Instr lui = decode(b[0] | (b[1] << 8) | (b[2] << 16) | (b[3] << 24));
  const Instr ori = decode(b[4] | (b[5] << 8) | (b[6] << 16) | (b[7] << 24));
  EXPECT_EQ(lui.op, Op::kLui);
  EXPECT_EQ(static_cast<u32>(lui.imm), 0xdeadu);
  EXPECT_EQ(ori.op, Op::kOri);
  EXPECT_EQ(static_cast<u32>(ori.imm), 0xbeefu);
}

TEST(Assembler, LaResolvesAbsoluteAddress) {
  Assembler a(0x10000000);
  a.la(R4, "data");
  a.halt();
  a.org(0x10000100);
  a.label("data");
  a.word(42);
  const Program p = a.assemble();
  EXPECT_EQ(p.symbol("data"), 0x10000100u);
}

TEST(Assembler, UndefinedLabelThrows) {
  Assembler a(0);
  a.beq(R1, R2, "nowhere");
  EXPECT_THROW(a.assemble(), AsmError);
}

TEST(Assembler, DuplicateLabelThrows) {
  Assembler a(0);
  a.label("x");
  EXPECT_THROW(a.label("x"), AsmError);
}

TEST(Assembler, OverlappingEmissionThrows) {
  Assembler a(0);
  a.nop();
  a.org(0);
  EXPECT_THROW(a.nop(), AsmError);
}

TEST(Assembler, ImmediateRangeChecks) {
  Assembler a(0);
  EXPECT_THROW(a.addi(R1, R0, 40000), AsmError);
  EXPECT_THROW(a.slli(R1, R1, 32), AsmError);
  EXPECT_THROW(a.andi(R1, R1, 0x10000), AsmError);
}

TEST(Assembler, R64RequiresEvenRegisters) {
  Assembler a(0);
  EXPECT_THROW(a.add64(R3, R2, R4), AsmError);
  a.add64(R2, R4, R6);  // fine
}

TEST(Assembler, AlignPadsWithNops) {
  Assembler a(4);
  a.align(16);
  a.label("here");
  const Program p = a.assemble();
  EXPECT_EQ(p.symbol("here"), 16u);
  EXPECT_EQ(p.size_bytes(), 12u);  // three NOPs
}

TEST(Assembler, EntryLabel) {
  Assembler a(0x1000);
  a.nop();
  a.label("main");
  a.halt();
  a.set_entry("main");
  EXPECT_EQ(a.assemble().entry(), 0x1004u);
}

// ----------------------------------------------------------------------------
// Disassembler
// ----------------------------------------------------------------------------

TEST(Disasm, Formats) {
  EXPECT_EQ(disasm(Instr{.op = Op::kAdd, .rd = 3, .rs1 = 1, .rs2 = 2}),
            "add    r3, r1, r2");
  EXPECT_EQ(disasm(Instr{.op = Op::kLw, .rd = 5, .rs1 = 9, .imm = -4}),
            "lw     r5, -4(r9)");
  EXPECT_EQ(disasm(Instr{.op = Op::kHalt}), "halt");
}

}  // namespace
}  // namespace detstl::isa
