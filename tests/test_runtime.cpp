// Supervisor + disturbance-injection tests: the recovery ladder must turn
// transient faults into retries (re-entering the wrapper's loading loop),
// permanent cache-layer faults into uncacheable-fallback runs, and permanent
// routine faults into core quarantine — and the whole campaign must stay
// byte-identical across worker-thread counts.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runtime/campaign.h"
#include "trace/capture.h"

namespace detstl::runtime {
namespace {

std::vector<std::unique_ptr<core::SelfTestRoutine>> g_keep;

std::vector<const core::SelfTestRoutine*> routines(
    std::initializer_list<const char*> names) {
  std::vector<const core::SelfTestRoutine*> out;
  for (const char* n : names) {
    const core::RoutineEntry* e = core::find_routine(n);
    EXPECT_NE(e, nullptr) << n;
    g_keep.push_back(e->make());
    out.push_back(g_keep.back().get());
  }
  return out;
}

u64 first_phase_cycle(const std::vector<trace::Event>& ev, unsigned core,
                      trace::Phase p) {
  for (const trace::Event& e : ev)
    if (e.kind == trace::EventKind::kPhaseBegin && e.core == core &&
        static_cast<trace::Phase>(e.unit) == p)
      return e.cycle;
  return 0;
}

u32 first_phase_pc(const std::vector<trace::Event>& ev, unsigned core,
                   trace::Phase p) {
  for (const trace::Event& e : ev)
    if (e.kind == trace::EventKind::kPhaseBegin && e.core == core &&
        static_cast<trace::Phase>(e.unit) == p)
      return e.addr;
  return 0;
}

unsigned count_phase(const std::vector<trace::Event>& ev, unsigned core,
                     trace::Phase p) {
  unsigned n = 0;
  for (const trace::Event& e : ev)
    n += e.kind == trace::EventKind::kPhaseBegin && e.core == core &&
         static_cast<trace::Phase>(e.unit) == p;
  return n;
}

unsigned count_kind(const std::vector<trace::Event>& ev,
                    trace::EventKind kind, unsigned core) {
  unsigned n = 0;
  for (const trace::Event& e : ev) n += e.kind == kind && e.core == core;
  return n;
}

DisturbancePlan single(Disturbance d) {
  DisturbancePlan plan;
  plan.items.push_back(d);
  return plan;
}

void corrupt_flash_word(soc::Soc& soc, u32 addr, u32 mask) {
  const u32 corrupted = soc.flash().read32(addr) ^ mask;
  std::vector<u8> bytes(4);
  for (unsigned i = 0; i < 4; ++i) bytes[i] = static_cast<u8>(corrupted >> (8 * i));
  soc.flash().write_image(addr, bytes);
}

// --- Schedule planning ------------------------------------------------------

TEST(PlanSchedule, FallbackSignatureMatchesCachedGolden) {
  // The uncacheable fallback rung must produce the same signature as the
  // cached golden, otherwise degradation would flag healthy hardware. The
  // exception is `branch`, which folds a jal return address (an absolute PC)
  // into its MISR: its golden is layout-dependent by construction, the two
  // rungs live at different code bases, and signature_stable records that so
  // the supervisor checks the fallback rung against its own golden.
  const SchedulePlan plan = plan_schedule(
      routines({"alu", "rf-march", "shifter", "branch", "muldiv"}), 1);
  ASSERT_EQ(plan.schedule[0].size(), 5u);
  for (const PlannedRoutine& r : plan.schedule[0]) {
    if (r.name == "branch") {
      EXPECT_FALSE(r.signature_stable);
      EXPECT_NE(r.cached_golden, r.fallback_golden);
    } else {
      EXPECT_TRUE(r.signature_stable) << r.name;
      EXPECT_EQ(r.cached_golden, r.fallback_golden) << r.name;
    }
    EXPECT_NE(r.cached_entry, 0u);
    EXPECT_NE(r.fallback_entry, 0u);
    EXPECT_NE(r.cached_entry, r.fallback_entry);
    EXPECT_NE(r.cached_golden_addr, 0u);
    EXPECT_NE(r.fallback_golden_addr, 0u);
    EXPECT_GT(r.cached_calib, 0u);
    EXPECT_GT(r.fallback_calib, 0u);
  }
}

TEST(PlanSchedule, UndisturbedRunPassesCleanOnAllCores) {
  SchedulePlan plan = plan_schedule(routines({"alu", "shifter"}), 3);
  StlSupervisor sup(plan.soc, plan.schedule);
  const SupervisorResult res = sup.run();
  EXPECT_FALSE(res.budget_exhausted);
  for (unsigned c = 0; c < 3; ++c) {
    EXPECT_FALSE(res.cores[c].quarantined);
    ASSERT_EQ(res.cores[c].records.size(), 2u);
    for (const RoutineRecord& r : res.cores[c].records) {
      EXPECT_EQ(r.outcome, RecoveryOutcome::kPassClean) << outcome_name(r.outcome);
      EXPECT_EQ(r.classification, Classification::kNone);
      EXPECT_EQ(r.cached_attempts, 1u);
      EXPECT_EQ(r.fallback_attempts, 0u);
      EXPECT_GT(r.cycles, 0u);
    }
  }
  // Cross-core interference must stay inside the default watchdog margin.
  EXPECT_EQ(res.cores[0].records[0].final_signature,
            plan.schedule[0][0].cached_golden);
}

// --- Transient disturbances -------------------------------------------------

// Locate the execution-loop window of the first attempt on core 0 from an
// undisturbed supervised run (deterministic, so a disturbed replay sees the
// identical timeline up to the injection point).
struct ExecWindow {
  u64 begin = 0;
  u64 check = 0;
  u32 pc = 0;
};

ExecWindow exec_window(SchedulePlan& plan) {
  trace::StreamCapture cap;
  plan.soc.set_trace_sink(&cap);
  StlSupervisor sup(plan.soc, plan.schedule);
  sup.run();
  plan.soc.set_trace_sink(nullptr);
  ExecWindow w;
  w.begin = first_phase_cycle(cap.events(), 0, trace::Phase::kExecutionLoop);
  w.check = first_phase_cycle(cap.events(), 0, trace::Phase::kSignatureCheck);
  w.pc = first_phase_pc(cap.events(), 0, trace::Phase::kExecutionLoop);
  EXPECT_GT(w.begin, 0u);
  EXPECT_GT(w.check, w.begin + 2);
  return w;
}

TEST(Disturbance, MidExecutionLoopInterruptIsTolerated) {
  SchedulePlan plan = plan_schedule(routines({"alu"}), 1);
  const ExecWindow w = exec_window(plan);

  Disturbance d;
  d.kind = DisturbanceKind::kIrq;
  d.core = 0;
  d.cycle = w.begin + 2;  // strictly inside the execution loop
  d.param = 1u << static_cast<unsigned>(isa::IcuSource::kSoftware);
  DisturbanceInjector inj(single(d));

  trace::StreamCapture cap;
  plan.soc.set_trace_sink(&cap);
  StlSupervisor sup(plan.soc, plan.schedule);
  const SupervisorResult res = sup.run(&inj);
  plan.soc.set_trace_sink(nullptr);

  EXPECT_EQ(inj.stats().applied[static_cast<unsigned>(DisturbanceKind::kIrq)], 1u);
  // The event was delivered mid-loop (deterministic replay: same timeline).
  const u64 exec = first_phase_cycle(cap.events(), 0, trace::Phase::kExecutionLoop);
  const u64 check = first_phase_cycle(cap.events(), 0, trace::Phase::kSignatureCheck);
  EXPECT_GE(d.cycle, exec);
  EXPECT_LT(d.cycle, check);
  // The wrapper runs with interrupt recognition masked, so a mid-loop event
  // must neither crash the attempt nor perturb the signature.
  const RoutineRecord& r = res.cores[0].records[0];
  EXPECT_EQ(r.outcome, RecoveryOutcome::kPassClean) << outcome_name(r.outcome);
  EXPECT_EQ(r.final_signature, plan.schedule[0][0].cached_golden);
}

TEST(Disturbance, MidExecutionLoopInvalidateIsTolerated) {
  // Dropping a resident I-line mid-loop forces a refetch from immutable
  // flash: timing changes, architectural results must not.
  SchedulePlan plan = plan_schedule(routines({"alu"}), 1);
  const ExecWindow w = exec_window(plan);

  Disturbance d;
  d.kind = DisturbanceKind::kICacheInvalidate;
  d.core = 0;
  d.cycle = w.begin + 2;
  d.pick = 0;  // first resident line
  DisturbanceInjector inj(single(d));
  StlSupervisor sup(plan.soc, plan.schedule);
  const SupervisorResult res = sup.run(&inj);

  EXPECT_EQ(inj.stats().applied[static_cast<unsigned>(
                DisturbanceKind::kICacheInvalidate)], 1u);
  const RoutineRecord& r = res.cores[0].records[0];
  EXPECT_EQ(r.outcome, RecoveryOutcome::kPassClean) << outcome_name(r.outcome);
}

TEST(Disturbance, ICacheFlipRecoveredByRetryThroughLoadingLoop) {
  SchedulePlan plan = plan_schedule(routines({"alu"}), 1);
  const ExecWindow w = exec_window(plan);
  const u32 line_bytes = plan.soc.core(0).memsys().icache().config().line_bytes;

  // Flip a bit of an instruction shortly after the loop head — it is about
  // to be refetched inside the checked iteration. Some encodings are
  // don't-care bits, so probe a few candidates; at least one must corrupt
  // the attempt and the retry must recover it.
  bool recovered = false;
  for (const u32 offset : {4u, 8u, 12u, 16u, 20u}) {
    for (const u32 bit_in_word : {1u, 5u, 13u}) {
      const u32 addr = w.pc + offset;
      Disturbance d;
      d.kind = DisturbanceKind::kICacheFlip;
      d.core = 0;
      d.cycle = w.begin + 2;
      d.addr = addr;
      d.pick = static_cast<u64>((addr % line_bytes) * 8 + bit_in_word) << 32;
      DisturbanceInjector inj(single(d));

      trace::StreamCapture cap;
      plan.soc.set_trace_sink(&cap);
      StlSupervisor sup(plan.soc, plan.schedule);
      const SupervisorResult res = sup.run(&inj);
      plan.soc.set_trace_sink(nullptr);

      const RoutineRecord& r = res.cores[0].records[0];
      if (r.outcome != RecoveryOutcome::kPassRecovered) continue;
      recovered = true;
      EXPECT_EQ(r.classification, Classification::kTransient);
      EXPECT_EQ(r.cached_attempts, 2u);
      EXPECT_EQ(r.fallback_attempts, 0u);
      EXPECT_EQ(r.final_signature, plan.schedule[0][0].cached_golden);
      // The retry re-enters the wrapper from the top: a second invalidate
      // phase and a second pass through the loading loop must be visible.
      EXPECT_GE(count_phase(cap.events(), 0, trace::Phase::kInvalidate), 2u);
      EXPECT_GE(count_phase(cap.events(), 0, trace::Phase::kLoadingLoop), 2u);
      EXPECT_EQ(count_kind(cap.events(), trace::EventKind::kSupAttempt, 0), 2u);
      break;
    }
    if (recovered) break;
  }
  EXPECT_TRUE(recovered)
      << "no candidate I$ bit flip failed the attempt and recovered on retry";
}

TEST(Disturbance, BusStallTimeoutRecoveredByRetry) {
  SchedulePlan plan = plan_schedule(routines({"alu"}), 1);
  const u64 calib = plan.schedule[0][0].cached_calib;

  SupervisorConfig cfg;
  cfg.margin_percent = 0;  // tight watchdog: calib + floor
  cfg.watchdog_floor = 200;

  // Freeze the bus for a full calibration length early in the attempt: the
  // watchdog must fire, and the retry (after the stall drains) must pass.
  Disturbance d;
  d.kind = DisturbanceKind::kBusStall;
  d.cycle = 100;
  d.param = static_cast<u32>(calib);
  DisturbanceInjector inj(single(d));
  StlSupervisor sup(plan.soc, plan.schedule, cfg);
  const SupervisorResult res = sup.run(&inj);

  const RoutineRecord& r = res.cores[0].records[0];
  EXPECT_EQ(r.outcome, RecoveryOutcome::kPassRecovered) << outcome_name(r.outcome);
  EXPECT_EQ(r.classification, Classification::kTransient);
  EXPECT_EQ(r.last_failure, AttemptStatus::kTimeout);
  EXPECT_EQ(r.cached_attempts, 2u);
  EXPECT_FALSE(res.cores[0].quarantined);
}

// --- Permanent faults: fallback and quarantine ------------------------------

TEST(Degradation, CachedRungPermanentFaultFallsBackUncached) {
  // Corrupt only the CACHED program's golden constant: every cached attempt
  // mismatches, the uncacheable fallback still passes — the supervisor must
  // keep coverage at degraded service and classify the fault permanent.
  SchedulePlan plan = plan_schedule(routines({"alu", "shifter"}), 1);
  corrupt_flash_word(plan.soc, plan.schedule[0][0].cached_golden_addr, 1u << 7);

  StlSupervisor sup(plan.soc, plan.schedule);
  const SupervisorResult res = sup.run();

  const RoutineRecord& r = res.cores[0].records[0];
  EXPECT_EQ(r.outcome, RecoveryOutcome::kPassDegraded) << outcome_name(r.outcome);
  EXPECT_EQ(r.classification, Classification::kPermanent);
  EXPECT_EQ(r.cached_attempts, SupervisorConfig{}.max_attempts);
  EXPECT_EQ(r.fallback_attempts, 1u);
  EXPECT_EQ(r.last_failure, AttemptStatus::kMismatch);
  EXPECT_EQ(r.final_signature, plan.schedule[0][0].fallback_golden);
  // The fault is local to routine 0's flash window; the rest of the
  // schedule must be unaffected.
  EXPECT_FALSE(res.cores[0].quarantined);
  EXPECT_EQ(res.cores[0].records[1].outcome, RecoveryOutcome::kPassClean);
}

TEST(Degradation, FlashCorruptQuarantinesCoreOthersContinue) {
  // A kFlashCorrupt disturbance flips the golden constant on BOTH rungs:
  // retry and fallback keep failing, the core must be quarantined with its
  // remaining routines skipped — while the other core finishes clean.
  SchedulePlan plan = plan_schedule(routines({"alu", "shifter"}), 2);

  Disturbance d;
  d.kind = DisturbanceKind::kFlashCorrupt;
  d.core = 0;
  d.cycle = 50;  // while routine 0 is the core's active target
  d.pick = 3;    // bit 3 of the golden word
  DisturbanceInjector inj(single(d));
  StlSupervisor sup(plan.soc, plan.schedule);
  const SupervisorResult res = sup.run(&inj);

  EXPECT_EQ(inj.stats().applied[static_cast<unsigned>(
                DisturbanceKind::kFlashCorrupt)], 1u);
  EXPECT_TRUE(res.cores[0].quarantined);
  const RoutineRecord& r0 = res.cores[0].records[0];
  EXPECT_EQ(r0.outcome, RecoveryOutcome::kQuarantined) << outcome_name(r0.outcome);
  EXPECT_EQ(r0.classification, Classification::kPermanent);
  EXPECT_EQ(r0.cached_attempts, SupervisorConfig{}.max_attempts);
  EXPECT_EQ(r0.fallback_attempts, SupervisorConfig{}.fallback_attempts);
  EXPECT_EQ(res.cores[0].records[1].outcome, RecoveryOutcome::kSkipped);
  // Graceful degradation: the sibling core keeps testing.
  EXPECT_FALSE(res.cores[1].quarantined);
  for (const RoutineRecord& r : res.cores[1].records)
    EXPECT_EQ(r.outcome, RecoveryOutcome::kPassClean) << outcome_name(r.outcome);
}

TEST(Supervisor, GlobalBudgetExhaustionIsReported) {
  SchedulePlan plan = plan_schedule(routines({"alu"}), 1);
  SupervisorConfig cfg;
  cfg.global_budget = 500;  // far below one calibration length
  StlSupervisor sup(plan.soc, plan.schedule, cfg);
  const SupervisorResult res = sup.run();
  EXPECT_TRUE(res.budget_exhausted);
  EXPECT_EQ(res.cores[0].records[0].outcome, RecoveryOutcome::kBudgetExhausted);
  EXPECT_LE(res.total_cycles, cfg.global_budget);
}

// --- Campaign determinism ---------------------------------------------------

TEST(Campaign, OutcomeVectorByteIdenticalAcrossThreadCounts) {
  CampaignSpec spec;
  spec.seed = 0xC0FFEE11;
  spec.runs = 4;
  spec.cores = 2;
  spec.routines = {"alu", "shifter"};
  spec.disturb.count = 5;
  spec.disturb.permanent_chance = 0.5;

  spec.threads = 1;
  const CampaignResult serial = run_disturbance_campaign(spec);
  for (const unsigned threads : {2u, 8u}) {
    spec.threads = threads;
    const CampaignResult par = run_disturbance_campaign(spec);
    EXPECT_EQ(par.outcome_vector(), serial.outcome_vector()) << threads;
    EXPECT_EQ(par.digest(), serial.digest()) << threads;
    EXPECT_EQ(render_recovery_report(par), render_recovery_report(serial))
        << threads;
  }
  // The injected disturbances must actually have landed.
  InjectionStats total;
  for (const RunRecord& rec : serial.records)
    for (unsigned k = 0; k < kNumDisturbanceKinds; ++k)
      total.applied[k] += rec.result.injections.applied[k];
  EXPECT_GT(total.total_applied(), 0u);
}

TEST(Campaign, CheckpointConfigHashExcludesExecutionKnobs) {
  const auto r = routines({"alu", "shifter"});
  const SchedulePlan plan = plan_schedule(r, 2);
  CampaignSpec spec;
  spec.seed = 0xAB;
  spec.runs = 4;
  spec.cores = 2;
  const u64 base = checkpoint_config_hash(spec, plan);
  EXPECT_EQ(checkpoint_config_hash(spec, plan), base);  // stable

  // Threads and checkpoint/interrupt/sink wiring are excluded: resuming on a
  // different worker count or with different observability is legal.
  CampaignSpec knobs = spec;
  knobs.threads = 8;
  knobs.checkpoint.dir = "elsewhere";
  knobs.checkpoint.resume = true;
  EXPECT_EQ(checkpoint_config_hash(knobs, plan), base);

  CampaignSpec seed = spec;
  seed.seed = 0xAC;
  EXPECT_NE(checkpoint_config_hash(seed, plan), base);

  CampaignSpec runs = spec;
  runs.runs = 5;
  EXPECT_NE(checkpoint_config_hash(runs, plan), base);

  CampaignSpec disturb = spec;
  disturb.disturb.permanent_chance = 0.25;
  EXPECT_NE(checkpoint_config_hash(disturb, plan), base);

  CampaignSpec sup = spec;
  sup.supervisor.max_attempts = 7;
  EXPECT_NE(checkpoint_config_hash(sup, plan), base);

  // A different schedule plan (different routine image) must re-key.
  const SchedulePlan plan2 = plan_schedule(routines({"alu"}), 2);
  EXPECT_NE(checkpoint_config_hash(spec, plan2), base);
}

TEST(Campaign, RunSeedsAreDecorrelatedAndStable) {
  EXPECT_NE(derive_run_seed(1, 0), derive_run_seed(1, 1));
  EXPECT_NE(derive_run_seed(1, 0), derive_run_seed(2, 0));
  EXPECT_EQ(derive_run_seed(42, 7), derive_run_seed(42, 7));
}

}  // namespace
}  // namespace detstl::runtime
