// CPU corner cases: imprecise-interrupt flows (recognition, distances, ERET,
// masking, MIP write-1-clear, the IRQ synchroniser), divide stalls, atomics,
// access errors, halt semantics, counters, and the pipeline tracer.

#include <gtest/gtest.h>

#include "isa/disasm.h"
#include "testutil.h"

namespace detstl {
namespace {

using namespace isa;
using isa::Assembler;

soc::Soc run(Assembler& a, unsigned core = 0, u64 max = 200000) {
  return test::run_single_core(a.assemble(), core, max);
}

// ----------------------------------------------------------------------------
// Imprecise interrupts
// ----------------------------------------------------------------------------

/// Standard ISR: counts invocations in r20 and stores MCAUSE into r21.
void emit_isr_setup(Assembler& a, const std::string& isr_label) {
  a.la(R1, isr_label);
  a.csrw(Csr::kMtvec, R1);
  a.li(R1, 0xf);
  a.csrw(Csr::kMie, R1);
  a.li(R1, kMstatusIe);
  a.csrw(Csr::kMstatus, R1);
}

TEST(Icu, OverflowTrapsImpreciselyAndResumes) {
  Assembler a(mem::kFlashBase);
  emit_isr_setup(a, "isr");
  a.li(R2, 0x7fffffff);
  a.addi(R3, R0, 1);
  a.addv(R4, R2, R3);   // overflow event at WB
  a.addi(R5, R0, 11);   // instructions beyond the interrupting one retire
  a.addi(R6, R0, 22);
  a.addi(R7, R0, 33);
  a.halt();
  a.label("isr");
  a.addi(R20, R20, 1);
  a.csrr(R21, Csr::kMcause);
  a.csrr(R22, Csr::kMepc);
  a.csrr(R23, Csr::kMfpc);
  a.eret();
  auto s = run(a);
  EXPECT_EQ(s.core(0).reg(20), 1u);              // exactly one trap
  EXPECT_EQ(s.core(0).reg(21), 0x1u);            // core A cause bit 0
  EXPECT_EQ(s.core(0).reg(4), 0x80000000u);      // result still written
  EXPECT_EQ(s.core(0).reg(7), 33u);              // execution resumed
  // Imprecise: recognition happened a positive number of bytes beyond the
  // interrupting instruction.
  EXPECT_GT(s.core(0).reg(22), s.core(0).reg(23));
}

TEST(Icu, RecognitionDistanceShrinksWhenFetchStarves) {
  // The same program with caches (fast fetch) and without (flash latency):
  // more instructions issue past the event when the front end keeps up.
  auto build = [](bool cached) {
    Assembler a(mem::kFlashBase);
    if (cached) {
      a.li(R1, kCacheOpInvI | kCacheOpInvD);
      a.csrw(Csr::kCacheOp, R1);
      a.li(R1, kCacheCfgIEn | kCacheCfgDEn);
      a.csrw(Csr::kCacheCfg, R1);
      // Warm the I-cache: run the measured block once with interrupts off.
    }
    emit_isr_setup(a, "isr");
    a.li(R2, 0x7fffffff);
    a.addi(R3, R0, 1);
    a.align(8);
    a.addv(R4, R2, R3);
    for (int i = 0; i < 16; ++i) {
      if (i % 2) a.addi(R6, R6, 1); else a.addi(R5, R5, 1);
    }
    a.halt();
    a.label("isr");
    a.csrr(R22, Csr::kMepc);
    a.csrr(R23, Csr::kMfpc);
    a.sub(R24, R22, R23);
    a.eret();
    return a.assemble();
  };
  // NOTE: without the loading pass the cached run still misses on first
  // touch, so compare uncached vs TCM-resident instead: copy-free proxy is
  // simply the uncached run against itself with contention — covered by the
  // determinism tests. Here: distance is positive and bounded.
  auto s_unc = test::run_single_core(build(false));
  const u32 dist = s_unc.core(0).reg(24);
  EXPECT_GT(dist, 0u);
  EXPECT_LE(dist, 64u);
}

TEST(Icu, MaskedSourceStaysPendingUntilCleared) {
  Assembler a(mem::kFlashBase);
  a.la(R1, "isr");
  a.csrw(Csr::kMtvec, R1);
  a.li(R1, 0xe);               // overflow masked
  a.csrw(Csr::kMie, R1);
  a.li(R1, kMstatusIe);
  a.csrw(Csr::kMstatus, R1);
  a.li(R2, 0x7fffffff);
  a.addi(R3, R0, 1);
  a.addv(R4, R2, R3);          // pending, no trap
  for (int i = 0; i < 8; ++i) a.nop();
  a.csrr(R10, Csr::kMip);      // observe pending bit
  a.li(R5, 0x1);
  a.csrw(Csr::kMip, R5);       // write-1-to-clear
  a.csrr(R11, Csr::kMip);
  a.halt();
  a.label("isr");
  a.addi(R20, R20, 1);
  a.eret();
  auto s = run(a);
  EXPECT_EQ(s.core(0).reg(20), 0u);  // never trapped
  EXPECT_EQ(s.core(0).reg(10), 0x1u);
  EXPECT_EQ(s.core(0).reg(11), 0x0u);
}

TEST(Icu, CauseMappingDiffersBetweenCoreAAndC) {
  // The software event maps to cause bit 1 on cores A/B (shared with access
  // errors) and to bit 3 on core C.
  auto build = [](u32 base) {
    Assembler a(base);
    a.la(R1, "isr");
    a.csrw(Csr::kMtvec, R1);
    a.li(R1, 0xf);
    a.csrw(Csr::kMie, R1);
    a.li(R1, kMstatusIe);
    a.csrw(Csr::kMstatus, R1);
    a.addi(R2, R0, 1);
    a.csrw(Csr::kMswi, R2);
    for (int i = 0; i < 8; ++i) a.nop();
    a.halt();
    a.label("isr");
    a.csrr(R21, Csr::kMcause);
    a.eret();
    return a.assemble();
  };
  auto sa = test::run_single_core(build(mem::kFlashBase), 0);
  auto sc = test::run_single_core(build(mem::kFlashBase + 0x10000), 2);
  EXPECT_EQ(sa.core(0).reg(21), 0x2u);
  EXPECT_EQ(sc.core(2).reg(21), 0x8u);
}

TEST(Icu, DivideByZeroRaisesAfterLatency) {
  Assembler a(mem::kFlashBase);
  emit_isr_setup(a, "isr");
  a.li(R2, 77);
  a.div(R4, R2, R0);
  for (int i = 0; i < 8; ++i) a.nop();
  a.halt();
  a.label("isr");
  a.addi(R20, R20, 1);
  a.csrr(R21, Csr::kMcause);
  a.eret();
  auto s = run(a);
  EXPECT_EQ(s.core(0).reg(20), 1u);
  EXPECT_EQ(s.core(0).reg(4), 0xffffffffu);  // architectural div/0 result
}

TEST(Icu, AccessErrorEventOnUnmappedLoad) {
  Assembler a(mem::kFlashBase);
  emit_isr_setup(a, "isr");
  a.li(R2, 0x0600'0000);  // hole between DTCM and flash
  a.lw(R4, R2, 0);
  for (int i = 0; i < 8; ++i) a.nop();
  a.halt();
  a.label("isr");
  a.addi(R20, R20, 1);
  a.eret();
  auto s = run(a);
  EXPECT_EQ(s.core(0).reg(20), 1u);
  EXPECT_EQ(s.core(0).reg(4), 0xdeadbeefu);  // poison value
}

TEST(Icu, StoreToFlashIsDroppedAndFlagged) {
  Assembler a(mem::kFlashBase);
  emit_isr_setup(a, "isr");
  a.li(R2, mem::kFlashBase + 0x1000);
  a.addi(R3, R0, 42);
  a.sw(R3, R2, 0);  // flash is read-only at run time
  for (int i = 0; i < 8; ++i) a.nop();
  a.halt();
  a.label("isr");
  a.addi(R20, R20, 1);
  a.eret();
  auto s = run(a);
  EXPECT_EQ(s.core(0).reg(20), 1u);
  EXPECT_EQ(s.flash().read32(mem::kFlashBase + 0x1000), 0u);
}

TEST(Icu, TwoPendingSourcesTrapInPriorityOrder) {
  Assembler a(mem::kFlashBase);
  emit_isr_setup(a, "isr");
  a.li(R2, 0x7fffffff);
  a.addi(R3, R0, 1);
  a.addv(R4, R2, R3);       // source 0 (overflow)
  a.csrw(Csr::kMswi, R3);   // source 3, right behind: both pending at trap
  for (int i = 0; i < 16; ++i) a.nop();
  a.halt();
  a.label("isr");
  a.addi(R20, R20, 1);
  a.csrr(R26, Csr::kMcause);
  // r21 accumulates the cause sequence: first trap in the low byte.
  a.slli(R21, R21, 8);
  a.or_(R21, R21, R26);
  a.eret();
  auto s = run(a);
  EXPECT_EQ(s.core(0).reg(20), 2u);  // two traps, serialised
  // Overflow (bit0) first, software (bit1 on core A) second.
  EXPECT_EQ(s.core(0).reg(21), 0x0102u);
}

// ----------------------------------------------------------------------------
// Pipeline mechanics
// ----------------------------------------------------------------------------

TEST(Pipeline, DivBlocksDependentsButComputes) {
  Assembler a(mem::kFlashBase);
  a.li(R1, 1000);
  a.addi(R2, R0, 10);
  a.div(R3, R1, R2);
  a.addi(R4, R3, 1);  // depends on the divide
  a.halt();
  auto s = run(a);
  EXPECT_EQ(s.core(0).reg(4), 101u);
  // The divide occupies EX for its latency: cycle count reflects it.
  EXPECT_GT(s.core(0).perf().cycles, 16u);
}

TEST(Pipeline, BackToBackDivides) {
  Assembler a(mem::kFlashBase);
  a.li(R1, 5040);
  a.addi(R2, R0, 7);
  a.div(R3, R1, R2);   // 720
  a.div(R4, R3, R2);   // 102
  a.rem(R5, R3, R2);   // 6
  a.halt();
  auto s = run(a);
  EXPECT_EQ(s.core(0).reg(4), 102u);
  EXPECT_EQ(s.core(0).reg(5), 6u);
}

TEST(Pipeline, AmoContendedFromThreeCores) {
  // Classic atomicity check: each core adds its share; the total must be
  // exact despite bus interleaving and cache-flush interactions.
  soc::Soc s;
  const u32 counter = mem::kSramBase + 0x7000;
  for (unsigned c = 0; c < 3; ++c) {
    Assembler a(mem::kFlashBase + 0x2000 + c * 0x10000);
    a.li(R1, counter);
    a.addi(R2, R0, 1);
    a.addi(R3, R0, 100);
    a.label("loop");
    a.amoadd(R4, R1, R2);
    a.addi(R3, R3, -1);
    a.bne(R3, R0, "loop");
    a.halt();
    const auto p = a.assemble();
    s.load_program(p);
    s.set_boot(c, p.entry());
  }
  s.reset();
  ASSERT_FALSE(s.run(1'000'000).timed_out);
  EXPECT_EQ(s.debug_read32(counter), 300u);
}

TEST(Pipeline, MisalignedAccessForceAligned) {
  Assembler a(mem::kFlashBase);
  a.li(R10, mem::kDtcmBase + 0x100);
  a.li(R1, 0xa1b2c3d4);
  a.sw(R1, R10, 0);
  a.lw(R2, R10, 2);   // misaligned: served from the aligned word
  a.lh(R3, R10, 1);   // misaligned halfword
  a.halt();
  auto s = run(a);
  EXPECT_EQ(s.core(0).reg(2), 0xa1b2c3d4u);
  EXPECT_EQ(s.core(0).reg(3), 0xffffc3d4u);  // sign-extended aligned half
}

TEST(Pipeline, HaltStopsYoungerInstructions) {
  Assembler a(mem::kFlashBase);
  a.addi(R1, R0, 1);
  a.halt();
  a.addi(R1, R0, 99);  // must never execute
  a.halt();
  auto s = run(a);
  EXPECT_EQ(s.core(0).reg(1), 1u);
}

TEST(Pipeline, InvalidEncodingHaltsCore) {
  Assembler a(mem::kFlashBase);
  a.addi(R1, R0, 7);
  a.word(0x00000000);  // reserved major opcode
  a.addi(R1, R0, 99);
  a.halt();
  auto s = run(a);
  EXPECT_TRUE(s.core(0).halted());
  EXPECT_EQ(s.core(0).reg(1), 7u);
}

TEST(Pipeline, RunawayFetchIntoUnmappedSpaceHalts) {
  Assembler a(mem::kFlashBase);
  a.li(R1, 0x0400'0000);  // unmapped
  a.jalr(R0, R1, 0);
  a.halt();
  auto s = run(a);
  EXPECT_TRUE(s.core(0).halted());
}

TEST(Pipeline, R0IsAlwaysZero) {
  Assembler a(mem::kFlashBase);
  a.addi(R0, R0, 123);
  a.add(R1, R0, R0);
  a.li(R10, mem::kDtcmBase);
  a.sw(R0, R10, 0);
  a.lw(R2, R10, 0);
  a.halt();
  auto s = run(a);
  EXPECT_EQ(s.core(0).reg(0), 0u);
  EXPECT_EQ(s.core(0).reg(1), 0u);
  EXPECT_EQ(s.core(0).reg(2), 0u);
}

TEST(Pipeline, PerfCountersAreConsistent) {
  Assembler a(mem::kFlashBase);
  for (int i = 0; i < 50; ++i) a.addi(R1, R1, 1);
  a.csrr(R10, Csr::kCycle);
  a.csrr(R11, Csr::kInstret);
  a.halt();
  auto s = run(a);
  const auto& p = s.core(0).perf();
  EXPECT_GE(p.cycles, p.instret / 2);  // at most dual issue
  EXPECT_EQ(p.instret, 53u);           // 50 addi + 2 csrr + halt
  EXPECT_GT(s.core(0).reg(10), 0u);
  EXPECT_LE(s.core(0).reg(11), s.core(0).reg(10));
}

TEST(Pipeline, TraceRecorderCapturesStages) {
  Assembler a(mem::kFlashBase);
  a.addi(R1, R0, 1);
  a.add(R2, R1, R1);
  a.halt();
  soc::Soc s;
  const auto prog = a.assemble();
  s.load_program(prog);
  s.set_boot(0, prog.entry());
  s.reset();
  s.core(0).trace().enable(true);
  s.run(1000);
  const auto& instrs = s.core(0).trace().instrs();
  ASSERT_GE(instrs.size(), 3u);
  for (const auto& ti : instrs) {
    // Issue < EX <= MEM <= WB ordering for retired instructions.
    if (ti.stage_cycle[3] == 0) continue;
    EXPECT_LT(ti.stage_cycle[0], ti.stage_cycle[1]) << ti.text;
    EXPECT_LT(ti.stage_cycle[1], ti.stage_cycle[2]) << ti.text;
    EXPECT_LT(ti.stage_cycle[2], ti.stage_cycle[3]) << ti.text;
  }
  const std::string rendered = s.core(0).trace().render();
  EXPECT_NE(rendered.find("add"), std::string::npos);
}

TEST(Pipeline, WatchdogCatchesSpin) {
  Assembler a(mem::kFlashBase);
  a.label("spin");
  a.beq(R0, R0, "spin");
  const auto prog = a.assemble();
  soc::Soc s;
  s.load_program(prog);
  s.set_boot(0, prog.entry());
  s.reset();
  const auto res = s.run(5000);
  EXPECT_TRUE(res.timed_out);
}

}  // namespace
}  // namespace detstl
