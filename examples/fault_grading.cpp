// Small fault-grading campaign, end to end: grade the Interrupt Control Unit
// of core A under (a) the legacy single-core structure and (b) the
// cache-based strategy with all cores active, using the gate-level ICU
// netlist and the two-phase stuck-at engine. Prints the per-phase statistics
// the larger Table II/III benches summarise.
//
//   $ ./examples/fault_grading                 # all hardware threads
//   $ DETSTL_THREADS=1 ./examples/fault_grading  # serial (same result)

#include <cstdio>
#include <cstdlib>

#include "core/routines.h"
#include "exp/experiments.h"
#include "fault/report.h"

namespace {

using namespace detstl;

void grade(const char* title, core::WrapperKind w, unsigned active_cores) {
  const auto routine = core::make_icu_test();
  exp::Scenario sc{active_cores, {0, 3, 7}, 0, 0, "demo"};
  auto tests = exp::build_scenario_tests(*routine, w, sc, /*graded=*/0,
                                         /*use_pcs=*/false);

  fault::CampaignConfig cc;
  cc.module = fault::Module::kIcu;
  cc.core_id = 0;
  cc.kind = isa::CoreKind::kA;
  cc.signature_from_marker = w == core::WrapperKind::kCacheBased;
  if (const char* t = std::getenv("DETSTL_THREADS"))
    cc.threads = static_cast<unsigned>(std::strtoul(t, nullptr, 10));
  fault::Campaign campaign(cc, exp::scenario_factory(std::move(tests), sc, 0));
  const auto res = campaign.run();

  // Full dictionary: outcomes plus per-gate-class coverage.
  const netlist::IcuNetlist icu(isa::CoreKind::kA);
  const auto report = fault::make_report(res, icu.nl(), cc.fault_stride);
  std::printf("\n%s", fault::render_report(report, title).c_str());
}

}  // namespace

int main() {
  std::printf("stuck-at fault grading of core A's Interrupt Control Unit\n");
  grade("single core, no caches (legacy)", core::WrapperKind::kPlain, 1);
  grade("three cores, cache-based strategy", core::WrapperKind::kCacheBased, 3);
  return 0;
}
