// Boot-time STL scheduling across the three cores (the software structure of
// [13] that the paper's Table I experiments follow): every core runs the full
// boot library — ALU, register-file march, shifter, branch, MUL/DIV — as
// cache-wrapped subroutines, synchronised phase-by-phase with shared-memory
// barriers (atomic fetch-add + uncached spin; the private L1s are not
// coherent). Prints the per-core, per-routine verdict matrix.
//
//   $ ./examples/boot_stl_schedule

#include <cstdio>

#include "core/routines.h"
#include "core/stl.h"

int main() {
  using namespace detstl;

  // Each core gets its own copy of the library (own flash region, own data
  // area, own result slots), compiled for its core kind.
  std::array<std::vector<std::unique_ptr<core::SelfTestRoutine>>, 3> stls = {
      core::make_boot_stl(), core::make_boot_stl(), core::make_boot_stl()};

  soc::SocConfig cfg;
  cfg.start_delay = {0, 5, 9};
  soc::Soc soc(cfg);

  std::vector<core::BuiltSuite> suites;
  for (unsigned c = 0; c < 3; ++c) {
    core::SuiteSpec spec;
    for (const auto& r : stls[c]) spec.routines.push_back(r.get());
    spec.wrapper = core::WrapperKind::kCacheBased;
    spec.env.core_id = c;
    spec.env.kind = static_cast<isa::CoreKind>(c);
    spec.env.code_base = mem::kFlashBase + 0x4000 + c * 0x40000;
    spec.env.data_base = core::default_data_base(c);
    spec.barriers = true;      // decentralised phase synchronisation
    spec.barrier_cores = 3;
    suites.push_back(core::build_suite(spec));
    soc.load_program(suites.back().prog);
    soc.set_boot(c, suites.back().prog.entry());
    std::printf("core %c: %u routines, %u bytes, fault-free suite time %llu cycles\n",
                'A' + c, static_cast<unsigned>(suites.back().goldens.size()),
                suites.back().code_bytes,
                static_cast<unsigned long long>(suites.back().calib_cycles));
  }

  soc.reset();
  const auto res = soc.run(50'000'000);
  if (res.timed_out) {
    std::printf("watchdog expired!\n");
    return 1;
  }
  std::printf("\nparallel boot STL finished in %llu cycles\n\n",
              static_cast<unsigned long long>(res.cycles));

  std::printf("%-10s", "routine");
  for (unsigned c = 0; c < 3; ++c) std::printf("  core %c            ", 'A' + c);
  std::printf("\n");
  bool all_pass = true;
  for (unsigned i = 0; i < suites[0].names.size(); ++i) {
    std::printf("%-10s", suites[0].names[i].c_str());
    for (unsigned c = 0; c < 3; ++c) {
      const auto v = core::read_verdict(soc, suites[c].results_base + 8 * i);
      const bool pass =
          v.status == soc::kStatusPass && v.signature == suites[c].goldens[i];
      all_pass &= pass;
      std::printf("  %s 0x%08x", pass ? "PASS" : "FAIL", v.signature);
    }
    std::printf("\n");
  }
  std::printf("\n%s\n", all_pass ? "all routines passed on all cores"
                                 : "unexpected failure");
  return all_pass ? 0 : 1;
}
