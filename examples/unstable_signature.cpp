// The problem the paper solves, made visible: the same self-test routine,
// executed the legacy way (no caches) in a multi-core SoC, produces a
// different signature on every SoC configuration — so the in-field check
// against the golden value fails even though the hardware is fault-free.
// The cache-based wrapper produces one bit-identical signature everywhere.
//
//   $ ./examples/unstable_signature

#include <cstdio>
#include <set>

#include "core/routines.h"
#include "core/stl.h"

namespace {

using namespace detstl;

core::BuiltTest build(const core::SelfTestRoutine& r, core::WrapperKind w, unsigned c) {
  core::BuildEnv env;
  env.core_id = c;
  env.kind = static_cast<isa::CoreKind>(c);
  env.code_base = mem::kFlashBase + 0x2000 + c * 0x40000;
  env.data_base = core::default_data_base(c);
  env.use_perf_counters = true;
  return core::build_wrapped(r, w, env);
}

void sweep(const char* title, core::WrapperKind w) {
  const auto routine = core::make_fwd_test(true);
  std::vector<core::BuiltTest> tests;
  for (unsigned c = 0; c < 3; ++c) tests.push_back(build(*routine, w, c));

  std::printf("\n--- %s (golden 0x%08x) ---\n", title, tests[0].golden);
  std::set<u32> sigs;
  unsigned passes = 0, runs = 0;
  for (const auto& stagger : {std::array<u32, 3>{0, 0, 0}, {0, 3, 7}, {5, 0, 2},
                              {1, 9, 4}, {12, 2, 6}}) {
    soc::SocConfig cfg;
    cfg.start_delay = stagger;
    soc::Soc soc(cfg);
    for (const auto& t : tests) {
      soc.load_program(t.prog);
      soc.set_boot(t.env.core_id, t.prog.entry());
    }
    soc.reset();
    if (soc.run(20'000'000).timed_out) continue;
    const auto v = core::read_verdict(soc, soc::mailbox_addr(0));
    sigs.insert(v.signature);
    ++runs;
    if (v.status == soc::kStatusPass) ++passes;
    std::printf("  stagger {%2u,%2u,%2u}: signature 0x%08x -> %s\n", stagger[0],
                stagger[1], stagger[2], v.signature,
                v.status == soc::kStatusPass ? "PASS" : "FAIL (mismatch!)");
  }
  std::printf("  %u distinct signature(s) across %u runs, %u/%u passed\n",
              static_cast<unsigned>(sigs.size()), runs, passes, runs);
}

}  // namespace

int main() {
  std::printf("core A runs the HDCU self-test [19] while cores B and C run\n"
              "their own copies — the paper's multi-core boot-test scenario.\n");
  sweep("legacy structure, no caches (paper Sec. II)", core::WrapperKind::kPlain);
  sweep("cache-based strategy (paper Sec. III)", core::WrapperKind::kCacheBased);
  std::printf("\nThe legacy structure cannot tell these mismatches from real"
              "\nhardware faults; the cache-based strategy can.\n");
  return 0;
}
