// Extending the STL without writing C++: author a self-test routine body as
// assembly text, plug it into the cache-based wrapper, and run it on all
// three cores. The fragment follows the body conventions (r1..r20 free,
// r25 = data base, signature in r29 with the rotl1-xor fold).
//
//   $ ./examples/custom_text_routine

#include <cstdio>

#include "core/routines.h"
#include "core/stl.h"

// A tiny logic-unit test: complementary patterns through AND/OR/XOR/NOR with
// a store/load round-trip, every result folded into the signature.
static const char* kBody = R"(
    li   r1, 0xaaaaaaaa
    li   r2, 0x55555555
    and  r3, r1, r2
    slli r26, r29, 1      ; --- fold r3: r29 = rotl1(r29) ^ r3
    srli r29, r29, 31
    or   r29, r26, r29
    xor  r29, r29, r3
    or   r3, r1, r2
    slli r26, r29, 1
    srli r29, r29, 31
    or   r29, r26, r29
    xor  r29, r29, r3
    xor  r3, r1, r2
    nor  r4, r1, r2
    add  r5, r3, r4       ; mixes both results
    sw   r5, 0(r25)       ; data-path round trip
    lw   r6, 0(r25)
    slli r26, r29, 1
    srli r29, r29, 31
    or   r29, r26, r29
    xor  r29, r29, r6
    addi r7, r0, 8        ; small counted loop: backward branch, taken 7x
  again:
    addi r7, r7, -1
    bne  r7, r0, again
    slli r26, r29, 1
    srli r29, r29, 31
    or   r29, r26, r29
    xor  r29, r29, r7
)";

int main() {
  using namespace detstl;

  auto routine = core::make_text_routine("logic-unit.s", kBody);

  soc::SocConfig cfg;
  cfg.start_delay = {0, 4, 9};
  soc::Soc soc(cfg);
  std::vector<core::BuiltTest> tests;
  for (unsigned c = 0; c < 3; ++c) {
    core::BuildEnv env;
    env.core_id = c;
    env.kind = static_cast<isa::CoreKind>(c);
    env.code_base = mem::kFlashBase + 0x2000 + c * 0x40000;
    env.data_base = core::default_data_base(c);
    tests.push_back(core::build_wrapped(*routine, core::WrapperKind::kCacheBased, env));
    soc.load_program(tests.back().prog);
    soc.set_boot(c, tests.back().prog.entry());
  }
  soc.reset();
  if (soc.run(10'000'000).timed_out) {
    std::printf("watchdog expired!\n");
    return 1;
  }

  bool all_pass = true;
  for (unsigned c = 0; c < 3; ++c) {
    const auto v = core::read_verdict(soc, soc::mailbox_addr(c));
    const bool pass = v.status == soc::kStatusPass && v.signature == tests[c].golden;
    all_pass &= pass;
    std::printf("core %c: %s  signature 0x%08x\n", 'A' + c, pass ? "PASS" : "FAIL",
                v.signature);
  }
  std::printf("%s\n", all_pass ? "text-authored routine: deterministic on all cores"
                               : "unexpected failure");
  return all_pass ? 0 : 1;
}
