// Quickstart: build the triple-core SoC, wrap a self-test routine with the
// paper's cache-based strategy, run it on all three cores in parallel, and
// show that every core reports a PASS with the expected (golden) signature —
// the determinism that plain multi-core execution cannot deliver.
//
//   $ ./examples/quickstart [--trace FILE]
//
// With --trace, every bus/cache/phase event of the run is captured and
// written as Chrome-trace JSON (load it in Perfetto; docs/observability.md).

#include <cstdio>
#include <cstring>

#include "core/routines.h"
#include "core/stl.h"
#include "trace/chrome_trace.h"
#include "trace/metrics.h"

int main(int argc, char** argv) {
  using namespace detstl;

  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace FILE]\n", argv[0]);
      return 2;
    }
  }

  // 1. A self-test routine targeting the hazard detection unit (the
  //    algorithm of [19], with performance counters in the signature).
  const auto routine = core::make_fwd_test(/*with_perf_counters=*/true);

  // 2. Wrap it per core with the cache-based strategy (Fig. 2b): invalidate
  //    the private caches, run the body twice — the loading loop pulls the
  //    code/data into the caches, the execution loop computes the checked
  //    signature fully decoupled from the shared bus. build_wrapped also
  //    calibrates the golden signature on an isolated fault-free run.
  std::vector<core::BuiltTest> tests;
  for (unsigned c = 0; c < 3; ++c) {
    core::BuildEnv env;
    env.core_id = c;
    env.kind = static_cast<isa::CoreKind>(c);  // cores A, B and the 64-bit C
    env.code_base = mem::kFlashBase + 0x2000 + c * 0x40000;
    env.data_base = core::default_data_base(c);
    env.use_perf_counters = true;
    tests.push_back(core::build_wrapped(*routine, core::WrapperKind::kCacheBased, env));
    std::printf("core %c: routine '%s' wrapped, %u bytes of code, golden 0x%08x\n",
                'A' + c, tests[c].name.c_str(), tests[c].code_bytes, tests[c].golden);
  }

  // 3. Run all three cores in parallel with skewed resets (worst-case bus
  //    contention during the loading loops).
  soc::SocConfig cfg;
  cfg.start_delay = {0, 3, 7};
  soc::Soc soc(cfg);
  for (const auto& t : tests) {
    soc.load_program(t.prog);
    soc.set_boot(t.env.core_id, t.prog.entry());
  }
  trace::ChromeTraceWriter writer;
  if (trace_path != nullptr) soc.set_trace_sink(&writer);
  soc.reset();
  const auto res = soc.run(10'000'000);
  if (res.timed_out) {
    std::printf("watchdog expired!\n");
    return 1;
  }

  // 4. Collect the verdicts from the shared-SRAM mailboxes.
  bool all_pass = true;
  for (unsigned c = 0; c < 3; ++c) {
    const auto v = core::read_verdict(soc, soc::mailbox_addr(c));
    const bool pass = v.status == soc::kStatusPass && v.signature == tests[c].golden;
    all_pass &= pass;
    std::printf("core %c: %s  signature 0x%08x (expected 0x%08x)  [%llu cycles]\n",
                'A' + c, pass ? "PASS" : "FAIL", v.signature, tests[c].golden,
                static_cast<unsigned long long>(soc.core(c).perf().cycles));
  }
  std::printf("%s\n", all_pass
                          ? "deterministic multi-core self-test: all cores PASS"
                          : "unexpected failure");

  if (trace_path != nullptr) {
    if (!writer.write_file(trace_path)) {
      std::fprintf(stderr, "error: cannot write trace file %s\n", trace_path);
      return 1;
    }
    std::printf("trace written to %s (%zu events)\n", trace_path, writer.size());
  }
  return all_pass ? 0 : 1;
}
