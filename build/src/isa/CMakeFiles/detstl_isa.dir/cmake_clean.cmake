file(REMOVE_RECURSE
  "CMakeFiles/detstl_isa.dir/alu.cpp.o"
  "CMakeFiles/detstl_isa.dir/alu.cpp.o.d"
  "CMakeFiles/detstl_isa.dir/asmparser.cpp.o"
  "CMakeFiles/detstl_isa.dir/asmparser.cpp.o.d"
  "CMakeFiles/detstl_isa.dir/assembler.cpp.o"
  "CMakeFiles/detstl_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/detstl_isa.dir/disasm.cpp.o"
  "CMakeFiles/detstl_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/detstl_isa.dir/encoding.cpp.o"
  "CMakeFiles/detstl_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/detstl_isa.dir/isa.cpp.o"
  "CMakeFiles/detstl_isa.dir/isa.cpp.o.d"
  "CMakeFiles/detstl_isa.dir/refexec.cpp.o"
  "CMakeFiles/detstl_isa.dir/refexec.cpp.o.d"
  "libdetstl_isa.a"
  "libdetstl_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detstl_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
