
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/alu.cpp" "src/isa/CMakeFiles/detstl_isa.dir/alu.cpp.o" "gcc" "src/isa/CMakeFiles/detstl_isa.dir/alu.cpp.o.d"
  "/root/repo/src/isa/asmparser.cpp" "src/isa/CMakeFiles/detstl_isa.dir/asmparser.cpp.o" "gcc" "src/isa/CMakeFiles/detstl_isa.dir/asmparser.cpp.o.d"
  "/root/repo/src/isa/assembler.cpp" "src/isa/CMakeFiles/detstl_isa.dir/assembler.cpp.o" "gcc" "src/isa/CMakeFiles/detstl_isa.dir/assembler.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/isa/CMakeFiles/detstl_isa.dir/disasm.cpp.o" "gcc" "src/isa/CMakeFiles/detstl_isa.dir/disasm.cpp.o.d"
  "/root/repo/src/isa/encoding.cpp" "src/isa/CMakeFiles/detstl_isa.dir/encoding.cpp.o" "gcc" "src/isa/CMakeFiles/detstl_isa.dir/encoding.cpp.o.d"
  "/root/repo/src/isa/isa.cpp" "src/isa/CMakeFiles/detstl_isa.dir/isa.cpp.o" "gcc" "src/isa/CMakeFiles/detstl_isa.dir/isa.cpp.o.d"
  "/root/repo/src/isa/refexec.cpp" "src/isa/CMakeFiles/detstl_isa.dir/refexec.cpp.o" "gcc" "src/isa/CMakeFiles/detstl_isa.dir/refexec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/detstl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
