# Empty compiler generated dependencies file for detstl_isa.
# This may be replaced when dependencies are built.
