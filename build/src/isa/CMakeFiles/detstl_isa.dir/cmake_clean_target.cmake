file(REMOVE_RECURSE
  "libdetstl_isa.a"
)
