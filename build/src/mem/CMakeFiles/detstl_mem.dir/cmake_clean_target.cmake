file(REMOVE_RECURSE
  "libdetstl_mem.a"
)
