# Empty compiler generated dependencies file for detstl_mem.
# This may be replaced when dependencies are built.
