file(REMOVE_RECURSE
  "CMakeFiles/detstl_mem.dir/bus.cpp.o"
  "CMakeFiles/detstl_mem.dir/bus.cpp.o.d"
  "CMakeFiles/detstl_mem.dir/cache.cpp.o"
  "CMakeFiles/detstl_mem.dir/cache.cpp.o.d"
  "CMakeFiles/detstl_mem.dir/memsys.cpp.o"
  "CMakeFiles/detstl_mem.dir/memsys.cpp.o.d"
  "libdetstl_mem.a"
  "libdetstl_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detstl_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
