file(REMOVE_RECURSE
  "CMakeFiles/detstl_fault.dir/campaign.cpp.o"
  "CMakeFiles/detstl_fault.dir/campaign.cpp.o.d"
  "CMakeFiles/detstl_fault.dir/report.cpp.o"
  "CMakeFiles/detstl_fault.dir/report.cpp.o.d"
  "libdetstl_fault.a"
  "libdetstl_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detstl_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
