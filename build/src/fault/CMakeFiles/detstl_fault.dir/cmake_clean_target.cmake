file(REMOVE_RECURSE
  "libdetstl_fault.a"
)
