# Empty dependencies file for detstl_fault.
# This may be replaced when dependencies are built.
