file(REMOVE_RECURSE
  "CMakeFiles/detstl_exp.dir/experiments.cpp.o"
  "CMakeFiles/detstl_exp.dir/experiments.cpp.o.d"
  "libdetstl_exp.a"
  "libdetstl_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detstl_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
