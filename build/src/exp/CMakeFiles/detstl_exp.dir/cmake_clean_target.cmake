file(REMOVE_RECURSE
  "libdetstl_exp.a"
)
