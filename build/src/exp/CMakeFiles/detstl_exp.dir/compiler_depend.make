# Empty compiler generated dependencies file for detstl_exp.
# This may be replaced when dependencies are built.
