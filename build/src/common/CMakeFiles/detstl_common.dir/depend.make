# Empty dependencies file for detstl_common.
# This may be replaced when dependencies are built.
