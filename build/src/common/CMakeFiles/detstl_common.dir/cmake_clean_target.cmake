file(REMOVE_RECURSE
  "libdetstl_common.a"
)
