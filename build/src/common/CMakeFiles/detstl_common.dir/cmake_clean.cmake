file(REMOVE_RECURSE
  "CMakeFiles/detstl_common.dir/log.cpp.o"
  "CMakeFiles/detstl_common.dir/log.cpp.o.d"
  "CMakeFiles/detstl_common.dir/table.cpp.o"
  "CMakeFiles/detstl_common.dir/table.cpp.o.d"
  "libdetstl_common.a"
  "libdetstl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detstl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
