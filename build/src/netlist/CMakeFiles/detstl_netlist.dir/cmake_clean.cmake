file(REMOVE_RECURSE
  "CMakeFiles/detstl_netlist.dir/fwd_netlist.cpp.o"
  "CMakeFiles/detstl_netlist.dir/fwd_netlist.cpp.o.d"
  "CMakeFiles/detstl_netlist.dir/hdcu_netlist.cpp.o"
  "CMakeFiles/detstl_netlist.dir/hdcu_netlist.cpp.o.d"
  "CMakeFiles/detstl_netlist.dir/icu_netlist.cpp.o"
  "CMakeFiles/detstl_netlist.dir/icu_netlist.cpp.o.d"
  "CMakeFiles/detstl_netlist.dir/netlist.cpp.o"
  "CMakeFiles/detstl_netlist.dir/netlist.cpp.o.d"
  "libdetstl_netlist.a"
  "libdetstl_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detstl_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
