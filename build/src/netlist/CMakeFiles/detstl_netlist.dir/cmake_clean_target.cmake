file(REMOVE_RECURSE
  "libdetstl_netlist.a"
)
