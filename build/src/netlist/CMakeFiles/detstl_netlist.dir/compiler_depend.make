# Empty compiler generated dependencies file for detstl_netlist.
# This may be replaced when dependencies are built.
