# Empty dependencies file for detstl_soc.
# This may be replaced when dependencies are built.
