file(REMOVE_RECURSE
  "CMakeFiles/detstl_soc.dir/soc.cpp.o"
  "CMakeFiles/detstl_soc.dir/soc.cpp.o.d"
  "libdetstl_soc.a"
  "libdetstl_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detstl_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
