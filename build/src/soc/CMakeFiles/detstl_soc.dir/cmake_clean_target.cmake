file(REMOVE_RECURSE
  "libdetstl_soc.a"
)
