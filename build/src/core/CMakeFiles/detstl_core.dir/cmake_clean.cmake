file(REMOVE_RECURSE
  "CMakeFiles/detstl_core.dir/routine.cpp.o"
  "CMakeFiles/detstl_core.dir/routine.cpp.o.d"
  "CMakeFiles/detstl_core.dir/routines/basic_tests.cpp.o"
  "CMakeFiles/detstl_core.dir/routines/basic_tests.cpp.o.d"
  "CMakeFiles/detstl_core.dir/routines/fwd_test.cpp.o"
  "CMakeFiles/detstl_core.dir/routines/fwd_test.cpp.o.d"
  "CMakeFiles/detstl_core.dir/routines/icu_test.cpp.o"
  "CMakeFiles/detstl_core.dir/routines/icu_test.cpp.o.d"
  "CMakeFiles/detstl_core.dir/routines/text_routine.cpp.o"
  "CMakeFiles/detstl_core.dir/routines/text_routine.cpp.o.d"
  "CMakeFiles/detstl_core.dir/stl.cpp.o"
  "CMakeFiles/detstl_core.dir/stl.cpp.o.d"
  "CMakeFiles/detstl_core.dir/wrapper.cpp.o"
  "CMakeFiles/detstl_core.dir/wrapper.cpp.o.d"
  "libdetstl_core.a"
  "libdetstl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detstl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
