file(REMOVE_RECURSE
  "libdetstl_core.a"
)
