
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/routine.cpp" "src/core/CMakeFiles/detstl_core.dir/routine.cpp.o" "gcc" "src/core/CMakeFiles/detstl_core.dir/routine.cpp.o.d"
  "/root/repo/src/core/routines/basic_tests.cpp" "src/core/CMakeFiles/detstl_core.dir/routines/basic_tests.cpp.o" "gcc" "src/core/CMakeFiles/detstl_core.dir/routines/basic_tests.cpp.o.d"
  "/root/repo/src/core/routines/fwd_test.cpp" "src/core/CMakeFiles/detstl_core.dir/routines/fwd_test.cpp.o" "gcc" "src/core/CMakeFiles/detstl_core.dir/routines/fwd_test.cpp.o.d"
  "/root/repo/src/core/routines/icu_test.cpp" "src/core/CMakeFiles/detstl_core.dir/routines/icu_test.cpp.o" "gcc" "src/core/CMakeFiles/detstl_core.dir/routines/icu_test.cpp.o.d"
  "/root/repo/src/core/routines/text_routine.cpp" "src/core/CMakeFiles/detstl_core.dir/routines/text_routine.cpp.o" "gcc" "src/core/CMakeFiles/detstl_core.dir/routines/text_routine.cpp.o.d"
  "/root/repo/src/core/stl.cpp" "src/core/CMakeFiles/detstl_core.dir/stl.cpp.o" "gcc" "src/core/CMakeFiles/detstl_core.dir/stl.cpp.o.d"
  "/root/repo/src/core/wrapper.cpp" "src/core/CMakeFiles/detstl_core.dir/wrapper.cpp.o" "gcc" "src/core/CMakeFiles/detstl_core.dir/wrapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/detstl_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/detstl_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/detstl_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/detstl_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/detstl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
