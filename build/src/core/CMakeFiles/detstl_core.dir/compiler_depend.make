# Empty compiler generated dependencies file for detstl_core.
# This may be replaced when dependencies are built.
