# Empty compiler generated dependencies file for detstl_cpu.
# This may be replaced when dependencies are built.
