file(REMOVE_RECURSE
  "CMakeFiles/detstl_cpu.dir/cpu.cpp.o"
  "CMakeFiles/detstl_cpu.dir/cpu.cpp.o.d"
  "CMakeFiles/detstl_cpu.dir/forward.cpp.o"
  "CMakeFiles/detstl_cpu.dir/forward.cpp.o.d"
  "CMakeFiles/detstl_cpu.dir/hazard.cpp.o"
  "CMakeFiles/detstl_cpu.dir/hazard.cpp.o.d"
  "CMakeFiles/detstl_cpu.dir/icu.cpp.o"
  "CMakeFiles/detstl_cpu.dir/icu.cpp.o.d"
  "CMakeFiles/detstl_cpu.dir/trace.cpp.o"
  "CMakeFiles/detstl_cpu.dir/trace.cpp.o.d"
  "libdetstl_cpu.a"
  "libdetstl_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detstl_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
