file(REMOVE_RECURSE
  "libdetstl_cpu.a"
)
