
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cpu.cpp" "src/cpu/CMakeFiles/detstl_cpu.dir/cpu.cpp.o" "gcc" "src/cpu/CMakeFiles/detstl_cpu.dir/cpu.cpp.o.d"
  "/root/repo/src/cpu/forward.cpp" "src/cpu/CMakeFiles/detstl_cpu.dir/forward.cpp.o" "gcc" "src/cpu/CMakeFiles/detstl_cpu.dir/forward.cpp.o.d"
  "/root/repo/src/cpu/hazard.cpp" "src/cpu/CMakeFiles/detstl_cpu.dir/hazard.cpp.o" "gcc" "src/cpu/CMakeFiles/detstl_cpu.dir/hazard.cpp.o.d"
  "/root/repo/src/cpu/icu.cpp" "src/cpu/CMakeFiles/detstl_cpu.dir/icu.cpp.o" "gcc" "src/cpu/CMakeFiles/detstl_cpu.dir/icu.cpp.o.d"
  "/root/repo/src/cpu/trace.cpp" "src/cpu/CMakeFiles/detstl_cpu.dir/trace.cpp.o" "gcc" "src/cpu/CMakeFiles/detstl_cpu.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/detstl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/detstl_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/detstl_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
