file(REMOVE_RECURSE
  "CMakeFiles/test_wrapper.dir/test_wrapper.cpp.o"
  "CMakeFiles/test_wrapper.dir/test_wrapper.cpp.o.d"
  "test_wrapper"
  "test_wrapper.pdb"
  "test_wrapper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
