# Empty dependencies file for test_wrapper.
# This may be replaced when dependencies are built.
