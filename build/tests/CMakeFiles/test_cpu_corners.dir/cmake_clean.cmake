file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_corners.dir/test_cpu_corners.cpp.o"
  "CMakeFiles/test_cpu_corners.dir/test_cpu_corners.cpp.o.d"
  "test_cpu_corners"
  "test_cpu_corners.pdb"
  "test_cpu_corners[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
