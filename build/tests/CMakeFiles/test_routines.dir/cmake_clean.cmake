file(REMOVE_RECURSE
  "CMakeFiles/test_routines.dir/test_routines.cpp.o"
  "CMakeFiles/test_routines.dir/test_routines.cpp.o.d"
  "test_routines"
  "test_routines.pdb"
  "test_routines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
