# Empty dependencies file for test_routines.
# This may be replaced when dependencies are built.
