# Empty compiler generated dependencies file for test_asmparser.
# This may be replaced when dependencies are built.
