
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_asmparser.cpp" "tests/CMakeFiles/test_asmparser.dir/test_asmparser.cpp.o" "gcc" "tests/CMakeFiles/test_asmparser.dir/test_asmparser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/detstl_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/detstl_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/detstl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/detstl_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/detstl_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/detstl_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/detstl_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/detstl_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/detstl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
