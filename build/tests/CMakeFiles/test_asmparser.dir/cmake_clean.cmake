file(REMOVE_RECURSE
  "CMakeFiles/test_asmparser.dir/test_asmparser.cpp.o"
  "CMakeFiles/test_asmparser.dir/test_asmparser.cpp.o.d"
  "test_asmparser"
  "test_asmparser.pdb"
  "test_asmparser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asmparser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
