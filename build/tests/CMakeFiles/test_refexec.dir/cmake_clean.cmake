file(REMOVE_RECURSE
  "CMakeFiles/test_refexec.dir/test_refexec.cpp.o"
  "CMakeFiles/test_refexec.dir/test_refexec.cpp.o.d"
  "test_refexec"
  "test_refexec.pdb"
  "test_refexec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
