# Empty dependencies file for test_refexec.
# This may be replaced when dependencies are built.
