# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_wrapper[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_corners[1]_include.cmake")
include("/root/repo/build/tests/test_soc[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_routines[1]_include.cmake")
include("/root/repo/build/tests/test_asmparser[1]_include.cmake")
include("/root/repo/build/tests/test_exp[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_refexec[1]_include.cmake")
