file(REMOVE_RECURSE
  "CMakeFiles/fault_grading.dir/fault_grading.cpp.o"
  "CMakeFiles/fault_grading.dir/fault_grading.cpp.o.d"
  "fault_grading"
  "fault_grading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_grading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
