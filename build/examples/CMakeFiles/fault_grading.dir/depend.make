# Empty dependencies file for fault_grading.
# This may be replaced when dependencies are built.
