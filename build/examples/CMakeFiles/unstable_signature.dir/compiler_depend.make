# Empty compiler generated dependencies file for unstable_signature.
# This may be replaced when dependencies are built.
