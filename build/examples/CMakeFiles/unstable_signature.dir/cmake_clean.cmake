file(REMOVE_RECURSE
  "CMakeFiles/unstable_signature.dir/unstable_signature.cpp.o"
  "CMakeFiles/unstable_signature.dir/unstable_signature.cpp.o.d"
  "unstable_signature"
  "unstable_signature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unstable_signature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
