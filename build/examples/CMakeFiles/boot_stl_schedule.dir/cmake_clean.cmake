file(REMOVE_RECURSE
  "CMakeFiles/boot_stl_schedule.dir/boot_stl_schedule.cpp.o"
  "CMakeFiles/boot_stl_schedule.dir/boot_stl_schedule.cpp.o.d"
  "boot_stl_schedule"
  "boot_stl_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boot_stl_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
