# Empty dependencies file for boot_stl_schedule.
# This may be replaced when dependencies are built.
