file(REMOVE_RECURSE
  "CMakeFiles/custom_text_routine.dir/custom_text_routine.cpp.o"
  "CMakeFiles/custom_text_routine.dir/custom_text_routine.cpp.o.d"
  "custom_text_routine"
  "custom_text_routine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_text_routine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
