# Empty dependencies file for custom_text_routine.
# This may be replaced when dependencies are built.
