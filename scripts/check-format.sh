#!/usr/bin/env bash
# Format gate: clang-format --dry-run over the tracked C++ sources.
# Exits 0 with a notice when no clang-format binary is available (the CI
# image and the dev container are gcc-only), so the gate never blocks a
# build it cannot check.
set -u
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [ -z "$CLANG_FORMAT" ]; then
  for cand in clang-format clang-format-19 clang-format-18 clang-format-17 \
              clang-format-16 clang-format-15 clang-format-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      CLANG_FORMAT="$cand"
      break
    fi
  done
fi

if [ -z "$CLANG_FORMAT" ]; then
  echo "check-format: no clang-format binary found; skipping (not a failure)"
  exit 0
fi

mapfile -t files < <(git ls-files '*.cpp' '*.h')
if [ "${#files[@]}" -eq 0 ]; then
  echo "check-format: no C++ sources tracked"
  exit 0
fi

echo "check-format: $CLANG_FORMAT --dry-run over ${#files[@]} files"
if "$CLANG_FORMAT" --dry-run --Werror "${files[@]}"; then
  echo "check-format: OK"
  exit 0
fi
echo "check-format: style drift detected; run: $CLANG_FORMAT -i \$(git ls-files '*.cpp' '*.h')"
exit 1
