#!/usr/bin/env bash
# Kill-and-resume drill for the crash-safe checkpoint subsystem
# (docs/fault_simulation.md "Checkpoint/resume").
#
# Three legs, each ending in a byte-for-byte diff against an uninterrupted
# reference run of the same seeded stlrun disturbance campaign:
#
#   1. deterministic kill point (--interrupt-after): the run drains after N
#      completed runs and exits 3 (resumable); --resume completes it;
#   2. corruption recovery: a shard of that checkpoint is bit-flipped before
#      a second resume — it must be quarantined to *.corrupt and its runs
#      re-executed, still converging to the reference;
#   3. real SIGTERM mid-run: the signal handler requests a cooperative
#      drain; resume completes the campaign. (If the signal lands after the
#      last run finished, the run exits 0 with the full report — also fine.)
#
# Usage: scripts/checkpoint_drill.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
STLRUN="$BUILD/tools/stlrun"
if [ ! -x "$STLRUN" ]; then
  echo "checkpoint-drill: $STLRUN not found; build the stlrun target first" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# One campaign, used by every leg. Big enough that a SIGTERM after a short
# sleep lands mid-run; small enough for CI.
ARGS=(campaign --seed 0xd171 --runs 200 --cores 3 --events 8 --permanent 30
      --threads 2)

echo "== reference: uninterrupted run"
"$STLRUN" "${ARGS[@]}" > "$WORK/reference.txt"

echo "== leg 1: deterministic kill after 50 runs, then resume"
rc=0
"$STLRUN" "${ARGS[@]}" --checkpoint-dir "$WORK/ckpt" --checkpoint-interval 16 \
    --interrupt-after 50 > /dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "checkpoint-drill: expected resumable exit 3, got $rc" >&2
  exit 1
fi
"$STLRUN" "${ARGS[@]}" --checkpoint-dir "$WORK/ckpt" --resume \
    > "$WORK/resumed.txt"
diff "$WORK/reference.txt" "$WORK/resumed.txt"
echo "   resumed run is byte-identical to the reference"

echo "== leg 2: bit-flip a shard, resume must quarantine and re-execute"
rc=0
"$STLRUN" "${ARGS[@]}" --checkpoint-dir "$WORK/ckpt2" --checkpoint-interval 16 \
    --interrupt-after 60 > /dev/null || rc=$?
[ "$rc" -eq 3 ] || { echo "checkpoint-drill: expected exit 3, got $rc" >&2; exit 1; }
SHARD="$WORK/ckpt2/shard-000000.ckpt"
[ -f "$SHARD" ] || { echo "checkpoint-drill: $SHARD missing" >&2; exit 1; }
# Offset 60 sits inside the first record's payload framing (header is 56
# bytes) — any flip there must fail the payload checksum.
printf '\xff' | dd of="$SHARD" bs=1 seek=60 conv=notrunc status=none
"$STLRUN" "${ARGS[@]}" --checkpoint-dir "$WORK/ckpt2" --resume \
    > "$WORK/resumed2.txt" 2> "$WORK/resumed2.err"
grep -q "corrupt" "$WORK/resumed2.err" || {
  echo "checkpoint-drill: resume stderr did not mention the corrupt shard" >&2
  cat "$WORK/resumed2.err" >&2
  exit 1
}
[ -f "$SHARD.corrupt" ] || {
  echo "checkpoint-drill: corrupt shard was not quarantined" >&2
  exit 1
}
diff "$WORK/reference.txt" "$WORK/resumed2.txt"
echo "   corrupt shard quarantined; result still byte-identical"

echo "== leg 3: real SIGTERM mid-run, then resume"
"$STLRUN" "${ARGS[@]}" --checkpoint-dir "$WORK/ckpt3" --checkpoint-interval 16 \
    > "$WORK/killed3.txt" 2> /dev/null &
PID=$!
sleep 0.5
kill -TERM "$PID" 2> /dev/null || true
rc=0
wait "$PID" || rc=$?
case "$rc" in
  3)
    "$STLRUN" "${ARGS[@]}" --checkpoint-dir "$WORK/ckpt3" --resume \
        > "$WORK/resumed3.txt"
    diff "$WORK/reference.txt" "$WORK/resumed3.txt"
    echo "   SIGTERM drained cooperatively; resume is byte-identical"
    ;;
  0)
    # The campaign outran the signal — its own complete report must match.
    diff "$WORK/reference.txt" "$WORK/killed3.txt"
    echo "   campaign finished before the signal landed (still identical)"
    ;;
  *)
    echo "checkpoint-drill: expected exit 3 (or 0), got $rc" >&2
    exit 1
    ;;
esac

echo "checkpoint-drill: OK"
