#!/usr/bin/env bash
# Kill-and-resume + multi-process chaos drill for the crash-safe checkpoint
# subsystem (docs/fault_simulation.md "Checkpoint/resume") and the stlserve
# orchestrator (docs/runtime.md "stlserve").
#
# Six legs, each ending in a byte-for-byte diff against an uninterrupted
# reference run of the same seeded campaign:
#
#   1. deterministic kill point (--interrupt-after): the run drains after N
#      completed runs and exits 3 (resumable); --resume completes it;
#   2. corruption recovery: a shard of that checkpoint is bit-flipped before
#      a second resume — it must be quarantined to *.corrupt and its runs
#      re-executed, still converging to the reference;
#   3. real SIGTERM mid-run: the signal handler requests a cooperative
#      drain; resume completes the campaign. (If the signal lands after the
#      last run finished, the run exits 0 with the full report — also fine.)
#   4. multi-process chaos: stlserve fans the same campaign out over 4
#      worker processes, two of which SIGKILL themselves mid-shard; the
#      supervisor respawns them, they resume their own journals, and the
#      merged report must equal the stlrun reference;
#   5. supervisor interruption + corruption: SIGTERM the stlserve supervisor
#      mid-campaign (workers drain cooperatively), bit-flip one worker's
#      shard file, then `stlserve run --resume` must quarantine the damage,
#      finish the campaign and still match the reference;
#   6. SEU soak kill/resume: a seeded `stlrun soak` campaign (upset injection
#      + differential isolation) is drained mid-flight with
#      --interrupt-after, resumed, and its report diffed against an
#      uninterrupted soak reference.
#
# Usage: scripts/checkpoint_drill.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
STLRUN="$BUILD/tools/stlrun"
STLSERVE="$BUILD/tools/stlserve"
if [ ! -x "$STLRUN" ]; then
  echo "checkpoint-drill: $STLRUN not found; build the stlrun target first" >&2
  exit 1
fi
if [ ! -x "$STLSERVE" ]; then
  echo "checkpoint-drill: $STLSERVE not found; build the stlserve target first" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# One campaign, used by every leg. Big enough that a SIGTERM after a short
# sleep lands mid-run; small enough for CI.
ARGS=(campaign --seed 0xd171 --runs 200 --cores 3 --events 8 --permanent 30
      --threads 2)

echo "== reference: uninterrupted run"
"$STLRUN" "${ARGS[@]}" > "$WORK/reference.txt"

echo "== leg 1: deterministic kill after 50 runs, then resume"
rc=0
"$STLRUN" "${ARGS[@]}" --checkpoint-dir "$WORK/ckpt" --checkpoint-interval 16 \
    --interrupt-after 50 > /dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "checkpoint-drill: expected resumable exit 3, got $rc" >&2
  exit 1
fi
"$STLRUN" "${ARGS[@]}" --checkpoint-dir "$WORK/ckpt" --resume \
    > "$WORK/resumed.txt"
diff "$WORK/reference.txt" "$WORK/resumed.txt"
echo "   resumed run is byte-identical to the reference"

echo "== leg 2: bit-flip a shard, resume must quarantine and re-execute"
rc=0
"$STLRUN" "${ARGS[@]}" --checkpoint-dir "$WORK/ckpt2" --checkpoint-interval 16 \
    --interrupt-after 60 > /dev/null || rc=$?
[ "$rc" -eq 3 ] || { echo "checkpoint-drill: expected exit 3, got $rc" >&2; exit 1; }
SHARD="$WORK/ckpt2/shard-000000.ckpt"
[ -f "$SHARD" ] || { echo "checkpoint-drill: $SHARD missing" >&2; exit 1; }
# Offset 60 sits inside the first record's payload framing (header is 56
# bytes) — any flip there must fail the payload checksum.
printf '\xff' | dd of="$SHARD" bs=1 seek=60 conv=notrunc status=none
"$STLRUN" "${ARGS[@]}" --checkpoint-dir "$WORK/ckpt2" --resume \
    > "$WORK/resumed2.txt" 2> "$WORK/resumed2.err"
grep -q "corrupt" "$WORK/resumed2.err" || {
  echo "checkpoint-drill: resume stderr did not mention the corrupt shard" >&2
  cat "$WORK/resumed2.err" >&2
  exit 1
}
[ -f "$SHARD.corrupt" ] || {
  echo "checkpoint-drill: corrupt shard was not quarantined" >&2
  exit 1
}
diff "$WORK/reference.txt" "$WORK/resumed2.txt"
echo "   corrupt shard quarantined; result still byte-identical"

echo "== leg 3: real SIGTERM mid-run, then resume"
"$STLRUN" "${ARGS[@]}" --checkpoint-dir "$WORK/ckpt3" --checkpoint-interval 16 \
    > "$WORK/killed3.txt" 2> /dev/null &
PID=$!
sleep 0.5
kill -TERM "$PID" 2> /dev/null || true
rc=0
wait "$PID" || rc=$?
case "$rc" in
  3)
    "$STLRUN" "${ARGS[@]}" --checkpoint-dir "$WORK/ckpt3" --resume \
        > "$WORK/resumed3.txt"
    diff "$WORK/reference.txt" "$WORK/resumed3.txt"
    echo "   SIGTERM drained cooperatively; resume is byte-identical"
    ;;
  0)
    # The campaign outran the signal — its own complete report must match.
    diff "$WORK/reference.txt" "$WORK/killed3.txt"
    echo "   campaign finished before the signal landed (still identical)"
    ;;
  *)
    echo "checkpoint-drill: expected exit 3 (or 0), got $rc" >&2
    exit 1
    ;;
esac

# The same campaign as ARGS, as an stlserve spec (stall/margin/attempts are
# left at the shared defaults, so the merged report must byte-match the
# single-process reference above).
cat > "$WORK/spec.json" <<'EOF'
{
  "seed": "0xd171",
  "runs": 200,
  "cores": 3,
  "events": 8,
  "permanent": 30,
  "workers": 4,
  "checkpoint_interval": 16
}
EOF

echo "== leg 4: 4 worker processes, two SIGKILL themselves mid-shard"
"$STLSERVE" run --spec "$WORK/spec.json" --dir "$WORK/serve4" --no-fsync \
    --backoff-base-ms 50 --chaos 0:kill-after:5 --chaos 2:kill-after:9 \
    > "$WORK/serve4.txt" 2> "$WORK/serve4.err"
grep -q "respawn" "$WORK/serve4.err" || {
  echo "checkpoint-drill: supervisor never respawned a killed worker" >&2
  cat "$WORK/serve4.err" >&2
  exit 1
}
diff "$WORK/reference.txt" "$WORK/serve4.txt"
echo "   two workers killed and respawned; merged report is byte-identical"

echo "== leg 5: SIGTERM the supervisor, bit-flip a shard, resume"
"$STLSERVE" run --spec "$WORK/spec.json" --dir "$WORK/serve5" --no-fsync \
    --quiet > /dev/null 2> /dev/null &
PID=$!
sleep 0.4
kill -TERM "$PID" 2> /dev/null || true
rc=0
wait "$PID" || rc=$?
if [ "$rc" -ne 3 ] && [ "$rc" -ne 0 ]; then
  echo "checkpoint-drill: expected stlserve exit 3 (or 0), got $rc" >&2
  exit 1
fi
# Damage one worker's journal (when any was flushed before the drain): the
# resume must quarantine it and re-execute the lost runs.
SHARD="$(find "$WORK/serve5" -name 'shard-000000.ckpt' | head -n 1 || true)"
if [ -n "$SHARD" ]; then
  printf '\xff' | dd of="$SHARD" bs=1 seek=60 conv=notrunc status=none
fi
"$STLSERVE" run --dir "$WORK/serve5" --resume --no-fsync \
    > "$WORK/serve5.txt" 2> "$WORK/serve5.err"
if [ -n "$SHARD" ]; then
  find "$WORK/serve5" -name '*.corrupt*' | grep -q . || {
    echo "checkpoint-drill: corrupt stlserve shard was not quarantined" >&2
    exit 1
  }
fi
diff "$WORK/reference.txt" "$WORK/serve5.txt"
echo "   supervisor drained, corruption quarantined; resume is byte-identical"

# The soak campaign journals per-run upset outcomes through the same
# checkpoint subsystem; the drill proves the isolation verdicts survive a
# mid-flight drain.
SOAK_ARGS=(soak --seed 0x5ea5 --runs 24 --threads 2)

echo "== leg 6: SEU soak campaign killed mid-flight, then resumed"
"$STLRUN" "${SOAK_ARGS[@]}" > "$WORK/soak_reference.txt" 2> /dev/null
rc=0
"$STLRUN" "${SOAK_ARGS[@]}" --checkpoint-dir "$WORK/ckpt6" \
    --checkpoint-interval 4 --interrupt-after 8 > /dev/null 2> /dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "checkpoint-drill: expected resumable soak exit 3, got $rc" >&2
  exit 1
fi
"$STLRUN" "${SOAK_ARGS[@]}" --checkpoint-dir "$WORK/ckpt6" --resume \
    > "$WORK/soak_resumed.txt" 2> /dev/null
diff "$WORK/soak_reference.txt" "$WORK/soak_resumed.txt"
echo "   resumed soak report is byte-identical to the reference"

echo "checkpoint-drill: OK"
